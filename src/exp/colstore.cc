#include "exp/colstore.hh"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace ich
{
namespace exp
{

namespace
{

using state::ArchiveError;
using state::Buffer;

// ---------------------------------------------------- wire primitives

void
put32(Buffer &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
put64(Buffer &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putString(Buffer &out, const std::string &s)
{
    put32(out, static_cast<std::uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

std::uint64_t
doubleBits(double d)
{
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof bits);
    return bits;
}

double
bitsDouble(std::uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, sizeof d);
    return d;
}

/** Bounds-checked little-endian cursor over a chunk body. */
class Cursor
{
  public:
    Cursor(const Buffer &buf, const std::string &path)
        : buf_(buf), path_(path)
    {
    }

    std::uint32_t u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(buf_[off_ + i]) << (8 * i);
        off_ += 4;
        return v;
    }

    std::uint64_t u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(buf_[off_ + i]) << (8 * i);
        off_ += 8;
        return v;
    }

    std::string str()
    {
        std::uint32_t n = u32();
        need(n);
        std::string s(reinterpret_cast<const char *>(buf_.data() + off_),
                      n);
        off_ += n;
        return s;
    }

    const std::uint8_t *bytes(std::size_t n)
    {
        need(n);
        const std::uint8_t *p = buf_.data() + off_;
        off_ += n;
        return p;
    }

    bool atEnd() const { return off_ == buf_.size(); }

    void expectEnd() const
    {
        if (!atEnd())
            throw ArchiveError("colstore: trailing bytes in a chunk of '" +
                               path_ + "'");
    }

  private:
    const Buffer &buf_;
    const std::string &path_;
    std::size_t off_ = 0;

    void need(std::size_t n) const
    {
        if (buf_.size() - off_ < n)
            throw ArchiveError("colstore: truncated chunk body in '" +
                               path_ + "'");
    }
};

// --------------------------------------------------- header chunk I/O

Buffer
encodeHeader(const StoreHeader &hdr)
{
    Buffer body;
    put32(body, kColFormatVersion);
    putString(body, hdr.scenario);
    putString(body, hdr.description);
    put64(body, hdr.baseSeed);
    put32(body, static_cast<std::uint32_t>(hdr.trialsPerPoint));
    put64(body, hdr.numPoints);
    put64(body, hdr.gridFp);
    return body;
}

/**
 * One record ready for columnar encoding: metric values resolved to
 * dictionary ids so rows from different maps share columns.
 */
struct Row {
    std::uint64_t pointIndex;
    std::uint32_t trial;
    std::uint64_t seed;
    std::vector<std::pair<std::uint32_t, double>> metrics; // id order
};

/**
 * Encode a data chunk: the dictionary delta (names assigned since the
 * last flush), then the fixed-width row columns, then one sparse
 * column per metric id present.
 */
Buffer
encodeDataChunk(const std::vector<std::string> &names_in_order,
                std::size_t first_new_name, const std::vector<Row> &rows)
{
    Buffer body;

    put32(body, static_cast<std::uint32_t>(names_in_order.size() -
                                           first_new_name));
    for (std::size_t i = first_new_name; i < names_in_order.size(); ++i) {
        put32(body, static_cast<std::uint32_t>(i));
        putString(body, names_in_order[i]);
    }

    const std::size_t n = rows.size();
    put32(body, static_cast<std::uint32_t>(n));
    for (const Row &r : rows)
        put64(body, r.pointIndex);
    for (const Row &r : rows)
        put32(body, r.trial);
    for (const Row &r : rows)
        put64(body, r.seed);

    // Which metric ids appear in this chunk, ascending.
    std::vector<std::uint32_t> ids;
    for (const Row &r : rows)
        for (const auto &m : r.metrics)
            ids.push_back(m.first);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

    put32(body, static_cast<std::uint32_t>(ids.size()));
    const std::size_t bitmap_bytes = (n + 7) / 8;
    for (std::uint32_t id : ids) {
        put32(body, id);
        std::vector<std::uint8_t> bitmap(bitmap_bytes, 0);
        std::vector<std::uint64_t> vals;
        for (std::size_t row = 0; row < n; ++row) {
            for (const auto &m : rows[row].metrics) {
                if (m.first == id) {
                    bitmap[row / 8] |=
                        static_cast<std::uint8_t>(1u << (row % 8));
                    vals.push_back(doubleBits(m.second));
                    break;
                }
            }
        }
        body.insert(body.end(), bitmap.begin(), bitmap.end());
        put32(body, static_cast<std::uint32_t>(vals.size()));
        for (std::uint64_t v : vals)
            put64(body, v);
    }
    return body;
}

Buffer
encodeFooter(std::uint64_t records, std::uint64_t points,
             std::uint32_t dict_size)
{
    Buffer body;
    put64(body, records);
    put64(body, points);
    put32(body, dict_size);
    return body;
}

/** Decoded data chunk: row columns + per-row (id, bits) metric lists. */
struct RawChunk {
    std::vector<std::uint64_t> pointIndex;
    std::vector<std::uint32_t> trial;
    std::vector<std::uint64_t> seed;
    /** Per row: (dictionary id, raw f64 bits), ascending id. */
    std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>>
        metrics;
    /** Dictionary delta carried by this chunk: (id, name). */
    std::vector<std::pair<std::uint32_t, std::string>> newNames;
};

RawChunk
decodeDataChunk(const Buffer &body, const std::string &path)
{
    Cursor cur(body, path);
    RawChunk out;

    std::uint32_t n_new = cur.u32();
    out.newNames.reserve(n_new);
    for (std::uint32_t i = 0; i < n_new; ++i) {
        std::uint32_t id = cur.u32();
        out.newNames.emplace_back(id, cur.str());
    }

    std::uint32_t n = cur.u32();
    out.pointIndex.reserve(n);
    out.trial.reserve(n);
    out.seed.reserve(n);
    out.metrics.resize(n);
    for (std::uint32_t i = 0; i < n; ++i)
        out.pointIndex.push_back(cur.u64());
    for (std::uint32_t i = 0; i < n; ++i)
        out.trial.push_back(cur.u32());
    for (std::uint32_t i = 0; i < n; ++i)
        out.seed.push_back(cur.u64());

    std::uint32_t n_cols = cur.u32();
    const std::size_t bitmap_bytes = (n + 7) / 8;
    for (std::uint32_t c = 0; c < n_cols; ++c) {
        std::uint32_t id = cur.u32();
        const std::uint8_t *bitmap = cur.bytes(bitmap_bytes);
        std::uint32_t n_vals = cur.u32();
        std::uint32_t seen = 0;
        for (std::uint32_t row = 0; row < n; ++row) {
            if (bitmap[row / 8] & (1u << (row % 8))) {
                if (seen >= n_vals)
                    throw ArchiveError(
                        "colstore: presence bitmap exceeds value count "
                        "in '" + path + "'");
                ++seen;
            }
        }
        if (seen != n_vals)
            throw ArchiveError(
                "colstore: presence bitmap disagrees with value count "
                "in '" + path + "'");
        // Columns arrive in ascending id order, so per-row lists stay
        // sorted without a second pass.
        std::vector<std::uint64_t> vals(n_vals);
        for (std::uint32_t v = 0; v < n_vals; ++v)
            vals[v] = cur.u64();
        for (std::uint32_t row = 0, v = 0; row < n; ++row)
            if (bitmap[row / 8] & (1u << (row % 8)))
                out.metrics[row].emplace_back(id, vals[v++]);
    }
    cur.expectEnd();
    return out;
}

std::vector<Row>
rowsFromRecords(std::map<std::string, std::uint32_t> &name_ids,
                std::vector<std::string> &names_in_order,
                std::size_t point_idx, const TrialRecord *records,
                std::size_t count)
{
    std::vector<Row> rows;
    rows.reserve(count);
    for (std::size_t t = 0; t < count; ++t) {
        const TrialRecord &rec = records[t];
        Row row;
        row.pointIndex = static_cast<std::uint64_t>(point_idx);
        row.trial = static_cast<std::uint32_t>(rec.trial);
        row.seed = rec.seed;
        row.metrics.reserve(rec.metrics.size());
        for (const auto &kv : rec.metrics) {
            auto it = name_ids.find(kv.first);
            if (it == name_ids.end()) {
                std::uint32_t id =
                    static_cast<std::uint32_t>(names_in_order.size());
                it = name_ids.emplace(kv.first, id).first;
                names_in_order.push_back(kv.first);
            }
            row.metrics.emplace_back(it->second, kv.second);
        }
        // MetricMap iterates name order; ids were assigned on first
        // sight, so sort to keep per-row lists in id order.
        std::sort(row.metrics.begin(), row.metrics.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace

// --------------------------------------------------- ColumnStoreWriter

ColumnStoreWriter::ColumnStoreWriter(std::string path)
    : ColumnStoreWriter(std::move(path), Options())
{
}

ColumnStoreWriter::ColumnStoreWriter(std::string path, Options opts)
    : path_(std::move(path)), opts_(opts)
{
    if (opts_.chunkRecords == 0)
        opts_.chunkRecords = 1;
}

ColumnStoreWriter::~ColumnStoreWriter()
{
    // No footer on destruction: an interrupted sweep must leave a
    // footer-less (resumable) file. Flush what we have, best-effort.
    try {
        if (began_ && !ended_ && !pending_.empty() && file_.isOpen())
            flushChunk();
    } catch (...) {
    }
    file_.close();
}

void
ColumnStoreWriter::beginSweep(const SweepMeta &meta)
{
    if (began_)
        throw std::logic_error("ColumnStoreWriter: beginSweep twice");
    began_ = true;

    // Adopt an existing store for the same sweep: scan it (validating
    // frames), import its dictionary, and append after its last intact
    // frame. Anything else — missing, corrupt, or a different sweep —
    // starts fresh.
    bool adopted = false;
    try {
        ColumnStoreReader prior(path_);
        if (prior.matches(meta)) {
            adoptedPoints_ = prior.completedPoints();
            fileRecords_ = prior.totalRecords();
            filePoints_ = prior.completedPoints();
            namesInOrder_ = prior.names();
            nameIds_.clear();
            for (std::size_t i = 0; i < namesInOrder_.size(); ++i)
                nameIds_[namesInOrder_[i]] =
                    static_cast<std::uint32_t>(i);
            flushedNames_ = namesInOrder_.size();
            sawFooter_ = prior.cleanFooter();
            file_.openAppend(path_, prior.validBytes(), opts_.durable);
            adopted = true;
        }
    } catch (const ArchiveError &) {
    }
    if (!adopted) {
        adoptedPoints_ = 0;
        fileRecords_ = 0;
        filePoints_ = 0;
        nameIds_.clear();
        namesInOrder_.clear();
        flushedNames_ = 0;
        sawFooter_ = false;
        file_.create(path_, opts_.durable);
        file_.append(kColChunkHeader, encodeHeader(storeHeader(meta)));
    }
}

void
ColumnStoreWriter::acceptPoint(std::size_t point_idx,
                               const TrialRecord *records,
                               std::size_t count)
{
    if (!began_ || ended_)
        throw std::logic_error(
            "ColumnStoreWriter: acceptPoint outside a sweep");
    std::vector<Row> rows = rowsFromRecords(nameIds_, namesInOrder_,
                                            point_idx, records, count);
    pending_.reserve(pending_.size() + rows.size());
    for (Row &row : rows) {
        PendingRecord pr;
        pr.pointIndex = row.pointIndex;
        pr.trial = row.trial;
        pr.seed = row.seed;
        pr.metrics = std::move(row.metrics);
        pending_.push_back(std::move(pr));
    }
    fileRecords_ += count;
    ++filePoints_;
    // Whole points per chunk: flush when the batch is big enough, or
    // immediately in durable mode (fsync'd append == checkpoint).
    if (opts_.durable || pending_.size() >= opts_.chunkRecords)
        flushChunk();
}

void
ColumnStoreWriter::sync()
{
    flushChunk();
    file_.sync();
}

void
ColumnStoreWriter::flushChunk()
{
    if (pending_.empty())
        return;
    std::vector<Row> rows;
    rows.reserve(pending_.size());
    for (PendingRecord &pr : pending_) {
        Row row;
        row.pointIndex = pr.pointIndex;
        row.trial = pr.trial;
        row.seed = pr.seed;
        row.metrics = std::move(pr.metrics);
        rows.push_back(std::move(row));
    }
    pending_.clear();
    Buffer body = encodeDataChunk(namesInOrder_, flushedNames_, rows);
    flushedNames_ = namesInOrder_.size();
    file_.append(kColChunkData, body);
    // A new data frame invalidates any adopted footer's totals; the
    // reader tolerates frames after a footer, and endSweep() writes a
    // fresh one.
    sawFooter_ = false;
}

void
ColumnStoreWriter::endSweep()
{
    if (!began_ || ended_)
        throw std::logic_error(
            "ColumnStoreWriter: endSweep outside a sweep");
    flushChunk();
    if (!sawFooter_)
        file_.append(kColChunkFooter,
                     encodeFooter(fileRecords_, filePoints_,
                                  static_cast<std::uint32_t>(
                                      namesInOrder_.size())));
    ended_ = true;
    file_.close();
}

// --------------------------------------------------- ColumnStoreReader

struct ColumnStoreReader::DecodedChunk {
    std::uint64_t offset = 0;
    RawChunk raw;
};

ColumnStoreReader::~ColumnStoreReader() = default;

ColumnStoreReader::ColumnStoreReader(const std::string &path) : path_(path)
{
    state::ChunkFileScanner scan(path);
    state::ChunkFrame frame;
    bool have_header = false;
    std::uint64_t footer_records = 0;
    std::uint64_t footer_points = 0;
    bool have_footer = false;

    // Per-point fingerprint of already-indexed points, used to verify
    // that duplicates (a crashed worker re-completing a point) carry
    // identical bits. FNV-1a over the canonical row encoding — cheap
    // relative to re-decoding both copies, and a collision would have
    // to also pass the per-frame CRC to slip through.
    std::map<std::size_t, std::uint64_t> point_fp;

    while (scan.next(frame)) {
        std::uint64_t frame_off = scan.lastFrameOffset();
        if (!have_header) {
            if (frame.kind != kColChunkHeader)
                throw ArchiveError(
                    "colstore: '" + path +
                    "' does not start with a header chunk");
            Cursor cur(frame.body, path_);
            std::uint32_t version = cur.u32();
            if (version != kColFormatVersion)
                throw ArchiveError(
                    "colstore: unsupported format version " +
                    std::to_string(version) + " in '" + path + "'");
            scenario_ = cur.str();
            description_ = cur.str();
            baseSeed_ = cur.u64();
            trialsPerPoint_ = static_cast<int>(cur.u32());
            numPoints_ = cur.u64();
            gridFp_ = cur.u64();
            cur.expectEnd();
            if (trialsPerPoint_ < 1)
                throw ArchiveError(
                    "colstore: invalid trials/point in '" + path + "'");
            have_header = true;
            continue;
        }
        if (frame.kind == kColChunkHeader)
            throw ArchiveError("colstore: duplicate header chunk in '" +
                               path + "'");
        if (frame.kind == kColChunkFooter) {
            Cursor cur(frame.body, path_);
            footer_records = cur.u64();
            footer_points = cur.u64();
            (void)cur.u32(); // dictionary size: advisory
            cur.expectEnd();
            have_footer = true;
            continue;
        }
        if (frame.kind != kColChunkData)
            throw ArchiveError("colstore: unknown chunk kind " +
                               std::to_string(frame.kind) + " in '" +
                               path + "'");
        have_footer = false; // data after a footer: totals are stale

        RawChunk raw = decodeDataChunk(frame.body, path_);
        for (const auto &nn : raw.newNames) {
            if (nn.first != names_.size())
                throw ArchiveError(
                    "colstore: non-contiguous dictionary ids in '" +
                    path + "'");
            names_.push_back(nn.second);
        }
        for (const auto &row : raw.metrics)
            for (const auto &m : row)
                if (m.first >= names_.size())
                    throw ArchiveError(
                        "colstore: metric id beyond the dictionary "
                        "in '" + path + "'");

        // Index whole points: rows for one point must be contiguous
        // with trials 0..T-1 in order.
        const std::size_t n = raw.pointIndex.size();
        const std::uint32_t tpp =
            static_cast<std::uint32_t>(trialsPerPoint_);
        if (n % tpp != 0)
            throw ArchiveError(
                "colstore: data chunk is not whole points in '" + path +
                "'");
        for (std::size_t base = 0; base < n; base += tpp) {
            std::uint64_t pidx = raw.pointIndex[base];
            if (numPoints_ > 0 && pidx >= numPoints_)
                throw ArchiveError(
                    "colstore: point index beyond the grid in '" +
                    path + "'");
            std::uint64_t fp = 1469598103934665603ull;
            auto mix = [&fp](std::uint64_t v) {
                for (int i = 0; i < 8; ++i) {
                    fp ^= (v >> (8 * i)) & 0xffu;
                    fp *= 1099511628211ull;
                }
            };
            for (std::uint32_t t = 0; t < tpp; ++t) {
                std::size_t r = base + t;
                if (raw.pointIndex[r] != pidx || raw.trial[r] != t)
                    throw ArchiveError(
                        "colstore: point rows out of trial order in '" +
                        path + "'");
                mix(raw.seed[r]);
                for (const auto &m : raw.metrics[r]) {
                    mix(m.first);
                    mix(m.second);
                }
            }
            auto prev = point_fp.find(static_cast<std::size_t>(pidx));
            if (prev != point_fp.end()) {
                if (prev->second != fp)
                    throw ArchiveError(
                        "colstore: conflicting duplicate of point " +
                        std::to_string(pidx) + " in '" + path + "'");
                continue; // identical duplicate: keep the first copy
            }
            point_fp[static_cast<std::size_t>(pidx)] = fp;
            PointLoc loc;
            loc.chunkOffset = frame_off;
            loc.rowStart = static_cast<std::uint32_t>(base);
            loc.rowCount = tpp;
            directory_[static_cast<std::size_t>(pidx)] = loc;
            totalRecords_ += tpp;
        }
    }
    torn_ = scan.tornTail();
    validBytes_ = scan.validBytes();
    if (!have_header)
        throw ArchiveError("colstore: '" + path +
                           "' has no header chunk");
    cleanFooter_ = have_footer && footer_records == totalRecords_ &&
                   footer_points == directory_.size();
}

bool
ColumnStoreReader::matches(const SweepMeta &meta) const
{
    // Description is presentation, not identity — a reworded scenario
    // must still resume.
    return scenario_ == meta.scenario && baseSeed_ == meta.baseSeed &&
           trialsPerPoint_ == meta.trialsPerPoint &&
           numPoints_ == static_cast<std::uint64_t>(meta.points.size()) &&
           gridFp_ == meta.gridFp;
}

const ColumnStoreReader::DecodedChunk &
ColumnStoreReader::chunkAt(std::uint64_t offset) const
{
    if (cache_ && cache_->offset == offset)
        return *cache_;
    state::ChunkFileScanner scan(path_);
    scan.seekTo(offset);
    state::ChunkFrame frame;
    if (!scan.next(frame) || frame.kind != kColChunkData)
        throw ArchiveError("colstore: data chunk vanished from '" +
                           path_ + "' (file changed underneath us?)");
    auto decoded = std::make_unique<DecodedChunk>();
    decoded->offset = offset;
    decoded->raw = decodeDataChunk(frame.body, path_);
    cache_ = std::move(decoded);
    return *cache_;
}

std::vector<TrialRecord>
ColumnStoreReader::pointAt(const PointLoc &loc) const
{
    const DecodedChunk &chunk = chunkAt(loc.chunkOffset);
    std::vector<TrialRecord> out;
    out.reserve(loc.rowCount);
    for (std::uint32_t i = 0; i < loc.rowCount; ++i) {
        std::size_t r = loc.rowStart + i;
        TrialRecord rec;
        rec.pointIndex =
            static_cast<std::size_t>(chunk.raw.pointIndex[r]);
        rec.trial = static_cast<int>(chunk.raw.trial[r]);
        rec.seed = chunk.raw.seed[r];
        for (const auto &m : chunk.raw.metrics[r])
            rec.metrics[names_[m.first]] = bitsDouble(m.second);
        out.push_back(std::move(rec));
    }
    return out;
}

void
ColumnStoreReader::forEachPoint(
    const std::function<void(std::size_t,
                             const std::vector<TrialRecord> &)> &fn) const
{
    for (const auto &kv : directory_)
        fn(kv.first, pointAt(kv.second));
}

std::vector<TrialRecord>
ColumnStoreReader::readPoint(std::size_t point_idx) const
{
    auto it = directory_.find(point_idx);
    if (it == directory_.end())
        throw std::out_of_range("colstore: point " +
                                std::to_string(point_idx) +
                                " is not in the store");
    return pointAt(it->second);
}

// ----------------------------------------------------- whole-store enc

StoreHeader
storeHeader(const SweepMeta &meta)
{
    StoreHeader hdr;
    hdr.scenario = meta.scenario;
    hdr.description = meta.description;
    hdr.baseSeed = meta.baseSeed;
    hdr.trialsPerPoint = meta.trialsPerPoint;
    hdr.numPoints = static_cast<std::uint64_t>(meta.points.size());
    hdr.gridFp = meta.gridFp;
    return hdr;
}

state::Buffer
encodeColumnStore(
    const StoreHeader &header,
    const std::map<std::size_t, std::vector<TrialRecord>> &points)
{
    Buffer out;
    state::appendChunkFrame(out, kColChunkHeader, encodeHeader(header));

    std::map<std::string, std::uint32_t> name_ids;
    std::vector<std::string> names_in_order;
    std::vector<Row> rows;
    std::uint64_t n_records = 0;
    for (const auto &kv : points) {
        std::vector<Row> point_rows =
            rowsFromRecords(name_ids, names_in_order, kv.first,
                            kv.second.data(), kv.second.size());
        n_records += point_rows.size();
        for (Row &r : point_rows)
            rows.push_back(std::move(r));
    }
    if (!rows.empty())
        state::appendChunkFrame(out, kColChunkData,
                                encodeDataChunk(names_in_order, 0, rows));
    state::appendChunkFrame(
        out, kColChunkFooter,
        encodeFooter(n_records, points.size(),
                     static_cast<std::uint32_t>(names_in_order.size())));
    return out;
}

} // namespace exp
} // namespace ich
