/**
 * @file
 * Shared command-line options for the experiment harnesses.
 *
 * Every harness built on the SweepRunner understands the same flags:
 *
 *   --jobs N      worker threads (default: hardware concurrency)
 *   --seed S      override every scenario's base seed
 *   --trials N    override trials-per-point
 *   --json        write <scenario>.json into the results directory
 *   --csv         write <scenario>.csv into the results directory
 *   --out DIR     results directory (default "results"; implies files)
 *   --resume      resumable sweep: checkpoint completed points (and
 *                 warm snapshots) into the results directory, and skip
 *                 points a previous interrupted run already finished
 *   --stream      memory-bounded result path: spill trial records to
 *                 the columnar store in the results directory and
 *                 aggregate points as they complete, instead of
 *                 materializing every trial in memory; reports are
 *                 byte-identical to the materialized path
 *   --shard N     run sweeps across N worker *processes* (fork/exec of
 *                 this binary) instead of in-process threads; results
 *                 are byte-identical to --jobs 1
 *   --render-from DIR
 *                 no simulation: re-render reports (and the harness
 *                 epilogue) from the column store a previous --stream /
 *                 --resume run left in DIR; the store must match the
 *                 scenario's grid/seed/trials identity
 *   --list        list available scenarios and exit
 *   --help        usage
 *   NAME...       positional: run only the named scenarios
 *
 * Internal flags (spawned by the shard coordinator, not for humans):
 *
 *   --shard-worker           enter worker mode: speak the shard
 *                            protocol on --shard-in/--shard-out
 *   --shard-in FD            frames from the coordinator
 *   --shard-out FD           frames to the coordinator
 *   --shard-scratch DIR      per-worker snapshot cache + manifest
 *   --shard-kill-after N     failure injection: SIGKILL while starting
 *                            the Nth assigned unit (tests only)
 *   --shard-fault SPEC       failure injection: arm a fault::Plan in
 *                            the worker (fault/fault.hh grammar) so
 *                            scripted faults fire at named protocol
 *                            points and I/O sites (tests/torture only)
 */

#ifndef ICH_EXP_CLI_HH
#define ICH_EXP_CLI_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "exp/runner.hh"

namespace ich
{
namespace exp
{

struct CliOptions {
    int jobs = 0; ///< <= 0: hardware concurrency
    std::optional<std::uint64_t> seed;
    std::optional<int> trials;
    bool json = false;
    bool csv = false;
    std::string outDir = "results";
    bool resume = false;
    /** Streaming result path: spill to the column store, aggregate on
     *  the fly, keep no in-memory trial vector (million-point sweeps). */
    bool stream = false;
    int shard = 0; ///< > 0: run sweeps across N worker processes
    /** Non-empty: skip simulation, re-render from this results dir. */
    std::string renderFrom;
    bool list = false;
    bool help = false;
    std::vector<std::string> scenarios; ///< empty: run everything

    /**
     * Extra argv for spawned shard workers: harness-specific flags the
     * worker binary needs to rebuild the same scenario registry (e.g.
     * perf_sweep's "--grid large"). Harnesses fill this after
     * harnessSetup; ignored unless shard > 0.
     */
    std::vector<std::string> shardWorkerArgs;

    // --- internal worker mode (set by the coordinator's spawn) ---
    bool shardWorker = false;
    int shardInFd = -1;
    int shardOutFd = -1;
    std::string shardScratch;
    int shardKillAfter = 0;
    std::string shardFault; ///< fault::Plan spec to arm in the worker
};

/**
 * Parse argv (argv[0] is skipped). Throws std::invalid_argument with a
 * human-readable message on unknown flags or malformed values.
 */
CliOptions parseCli(int argc, const char *const *argv);

/** Usage text for --help / parse errors. */
std::string cliUsage(const std::string &prog);

/** Runner options implied by the CLI flags. */
RunnerOptions toRunnerOptions(const CliOptions &cli);

/** True when @p name was selected (no positional args selects all). */
bool wantScenario(const CliOptions &cli, const std::string &name);

} // namespace exp
} // namespace ich

#endif // ICH_EXP_CLI_HH
