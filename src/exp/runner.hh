/**
 * @file
 * SweepRunner: executes a ScenarioSpec's trial grid on a fixed-size
 * worker pool.
 *
 * Trials are embarrassingly parallel — each constructs its own
 * Simulation from a seed derived deterministically from
 * (base_seed, global_trial_index) — so a sweep run with --jobs 1 and
 * --jobs N produces byte-identical aggregates and reports.
 *
 * runStreaming() is the engine: completed points are pushed into a
 * ResultSink the moment their last trial lands, and the runner retains
 * only the points still in flight (O(jobs) buffers, not O(grid)).
 * run() is the compatibility wrapper — a MaterializeSink plus the
 * serial aggregate() pass — and doubles as the byte-identity oracle
 * for the streaming path.
 */

#ifndef ICH_EXP_RUNNER_HH
#define ICH_EXP_RUNNER_HH

#include <cstdint>
#include <functional>
#include <optional>

#include "exp/aggregate.hh"
#include "exp/scenario.hh"
#include "exp/sink.hh"

namespace ich
{
namespace exp
{

/** Execution options (shared by all harness CLIs). */
struct RunnerOptions {
    /** Worker threads; <= 0 means std::thread::hardware_concurrency(). */
    int jobs = 0;
    /** Override the spec's base seed. */
    std::optional<std::uint64_t> seed;
    /** Override the spec's trials-per-point. */
    std::optional<int> trials;
    /**
     * Progress callback (completed, total), invoked from worker threads
     * under an internal mutex. Leave empty for silent runs.
     */
    std::function<void(std::size_t, std::size_t)> progress;
    /**
     * Resumable-sweep directory (empty: off). When set, the runner
     * (a) skips grid points recorded as complete in
     * `<dir>/<scenario>.colstore` from a previous matching run,
     * (b) appends every completed point to that store durably
     * (fsync'd CRC-framed chunks — O(1) per point),
     * and (c) caches warm-state snapshots as `<scenario>.warm-*.snap`
     * so a restart does not re-simulate warmup either. Results are
     * byte-identical to an uninterrupted run (metrics round-trip as
     * raw IEEE-754 bits).
     */
    std::string resumeDir;
};

/** Resolved worker count for @p jobs (<=0 → hardware concurrency). */
int resolveJobs(int jobs);

class SweepRunner
{
  public:
    explicit SweepRunner(RunnerOptions opts = {});

    /**
     * Expand the grid, compute warm-state snapshots (once per unique
     * warmup key), run trials on the pool, and stream each completed
     * point into @p sink (completion order; see exp/sink.hh for the
     * contract). Memory stays O(open points), independent of grid
     * size. Throws std::runtime_error carrying the first failing
     * trial's message if any trial threw — in that case endSweep() is
     * never called.
     */
    StreamStats runStreaming(const ScenarioSpec &spec,
                             ResultSink &sink) const;

    /**
     * Materializing wrapper over runStreaming(): returns the full
     * SweepResult with serial aggregates. O(total trials) memory, by
     * design — prefer runStreaming() for large grids.
     */
    SweepResult run(const ScenarioSpec &spec) const;

    const RunnerOptions &options() const { return opts_; }

  private:
    RunnerOptions opts_;
};

} // namespace exp
} // namespace ich

#endif // ICH_EXP_RUNNER_HH
