/**
 * @file
 * SweepRunner: executes a ScenarioSpec's trial grid on a fixed-size
 * worker pool.
 *
 * Trials are embarrassingly parallel — each constructs its own
 * Simulation from a seed derived deterministically from
 * (base_seed, global_trial_index) — so results land in a pre-sized slot
 * vector indexed by global trial index and are aggregated serially
 * afterwards. A sweep run with --jobs 1 and --jobs N therefore produces
 * byte-identical aggregates and reports.
 */

#ifndef ICH_EXP_RUNNER_HH
#define ICH_EXP_RUNNER_HH

#include <cstdint>
#include <functional>
#include <optional>

#include "exp/aggregate.hh"
#include "exp/scenario.hh"

namespace ich
{
namespace exp
{

/** Execution options (shared by all harness CLIs). */
struct RunnerOptions {
    /** Worker threads; <= 0 means std::thread::hardware_concurrency(). */
    int jobs = 0;
    /** Override the spec's base seed. */
    std::optional<std::uint64_t> seed;
    /** Override the spec's trials-per-point. */
    std::optional<int> trials;
    /**
     * Progress callback (completed, total), invoked from worker threads
     * under an internal mutex. Leave empty for silent runs.
     */
    std::function<void(std::size_t, std::size_t)> progress;
    /**
     * Resumable-sweep directory (empty: off). When set, the runner
     * (a) skips grid points recorded as complete in
     * `<dir>/<scenario>.manifest` from a previous matching run,
     * (b) flushes the manifest atomically after every completed point,
     * and (c) caches warm-state snapshots as `<scenario>.warm-*.snap`
     * so a restart does not re-simulate warmup either. Results are
     * byte-identical to an uninterrupted run (metrics round-trip as
     * raw IEEE-754 bits).
     */
    std::string resumeDir;
};

/** Resolved worker count for @p jobs (<=0 → hardware concurrency). */
int resolveJobs(int jobs);

class SweepRunner
{
  public:
    explicit SweepRunner(RunnerOptions opts = {});

    /**
     * Expand the grid, compute warm-state snapshots (once per unique
     * warmup key), run trials on the pool, aggregate. Throws
     * std::runtime_error carrying the first failing trial's message if
     * any trial threw.
     */
    SweepResult run(const ScenarioSpec &spec) const;

    const RunnerOptions &options() const { return opts_; }

  private:
    RunnerOptions opts_;
};

} // namespace exp
} // namespace ich

#endif // ICH_EXP_RUNNER_HH
