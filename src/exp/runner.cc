#include "exp/runner.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "exp/resume.hh"
#include "state/archive.hh"

namespace ich
{
namespace exp
{

namespace
{

/**
 * Warm-state snapshot table: one buffer per unique warmup key, shared
 * by every trial of the points mapping to that key.
 */
struct WarmTable {
    std::vector<std::string> keys; ///< first-seen order
    std::vector<state::Buffer> buffers;
    std::vector<std::size_t> pointToKey; ///< point index -> keys index
};

/**
 * Group points by warmup key and materialize each key's snapshot,
 * skipping keys whose every point is already complete (@p point_done).
 * Cached `.snap` files are reused only when @p trust_cache — i.e. the
 * result directory's manifest matched this sweep, the sole witness
 * that the cache was produced by the same warmup; otherwise they are
 * recomputed and overwritten. Computation fans out on @p jobs workers:
 * warmups are independent by the determinism contract.
 */
WarmTable
buildWarmTable(const ScenarioSpec &spec,
               const std::vector<ParamPoint> &points, int jobs,
               const std::string &resume_dir, bool trust_cache,
               const std::vector<char> &point_done)
{
    WarmTable table;
    table.pointToKey.resize(points.size());
    std::unordered_map<std::string, std::size_t> index;
    for (std::size_t i = 0; i < points.size(); ++i) {
        std::string key = spec.warmupKey ? spec.warmupKey(points[i])
                                         : points[i].toString();
        auto it = index.find(key);
        if (it == index.end()) {
            it = index.emplace(key, table.keys.size()).first;
            table.keys.push_back(std::move(key));
        }
        table.pointToKey[i] = it->second;
    }
    table.buffers.resize(table.keys.size());

    // Representative point per key (first point mapping to it), and
    // whether any of the key's points still has trials to run — fully
    // resumed keys never warm.
    std::vector<std::size_t> rep(table.keys.size(), points.size());
    std::vector<char> needed(table.keys.size(), 0);
    for (std::size_t i = points.size(); i-- > 0;) {
        rep[table.pointToKey[i]] = i;
        if (!point_done[i])
            needed[table.pointToKey[i]] = 1;
    }

    std::vector<char> have(table.keys.size(), 0);
    if (!resume_dir.empty() && trust_cache) {
        for (std::size_t k = 0; k < table.keys.size(); ++k) {
            if (!needed[k])
                continue;
            std::string path =
                warmSnapshotPath(resume_dir, spec.name, table.keys[k]);
            try {
                state::Buffer cached = state::readFile(path);
                state::ArchiveReader validate(cached); // CRC/version
                table.buffers[k] = std::move(cached);
                have[k] = 1;
            } catch (const state::ArchiveError &) {
                // Missing or corrupt cache entry: recompute below.
            }
        }
    }

    std::atomic<std::size_t> cursor{0};
    std::mutex error_mu;
    std::string first_error;
    auto worker = [&]() {
        for (;;) {
            std::size_t k = cursor.fetch_add(1);
            if (k >= table.keys.size())
                return;
            if (have[k] || !needed[k])
                continue;
            try {
                table.buffers[k] = spec.warmup(points[rep[k]]);
            } catch (const std::exception &e) {
                std::lock_guard<std::mutex> lock(error_mu);
                if (first_error.empty())
                    first_error = e.what();
            }
        }
    };
    int n_workers = static_cast<int>(
        std::min<std::size_t>(jobs, table.keys.size()));
    if (n_workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n_workers);
        for (int i = 0; i < n_workers; ++i)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    if (!first_error.empty())
        throw std::runtime_error("scenario '" + spec.name +
                                 "': warmup failed: " + first_error);

    if (!resume_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(resume_dir, ec);
        for (std::size_t k = 0; k < table.keys.size(); ++k) {
            if (have[k] || !needed[k])
                continue;
            state::atomicWriteFile(
                warmSnapshotPath(resume_dir, spec.name, table.keys[k]),
                table.buffers[k]);
        }
    }
    return table;
}

} // namespace

int
resolveJobs(int jobs)
{
    if (jobs > 0)
        return jobs;
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

SweepRunner::SweepRunner(RunnerOptions opts) : opts_(std::move(opts)) {}

SweepResult
SweepRunner::run(const ScenarioSpec &spec) const
{
    if (!spec.run)
        throw std::invalid_argument("SweepRunner: scenario '" + spec.name +
                                    "' has no trial function");

    SweepResult result;
    result.scenario = spec.name;
    result.description = spec.description;
    result.baseSeed = opts_.seed.value_or(spec.baseSeed);
    result.trialsPerPoint = opts_.trials.value_or(spec.trials);
    if (result.trialsPerPoint < 1)
        throw std::invalid_argument("SweepRunner: trials must be >= 1");
    result.points = expandPoints(spec);
    result.jobs = resolveJobs(opts_.jobs);

    const std::size_t trials_per_point =
        static_cast<std::size_t>(result.trialsPerPoint);
    const std::size_t total = result.points.size() * trials_per_point;
    result.trials.resize(total);

    auto t0 = std::chrono::steady_clock::now();

    // Resume: prefill points completed by a previous matching run.
    // This happens before warmups so fully resumed warm groups are
    // never re-simulated, and so the warm-snapshot cache is reused
    // only when the manifest vouches for the result directory.
    ResumeManifest manifest;
    manifest.scenario = result.scenario;
    manifest.baseSeed = result.baseSeed;
    manifest.trialsPerPoint = result.trialsPerPoint;
    manifest.numPoints = result.points.size();
    manifest.gridFp = gridFingerprint(result.points);
    std::vector<char> point_done(result.points.size(), 0);
    const bool resumable = !opts_.resumeDir.empty();
    bool manifest_matched = false;
    std::string manifest_path;
    if (resumable) {
        manifest_path = manifestPath(opts_.resumeDir, result.scenario);
        ResumeManifest prior;
        if (loadManifest(manifest_path, prior)) {
            if (prior.matches(manifest)) {
                manifest_matched = true;
                for (auto &kv : prior.points) {
                    for (std::size_t t = 0; t < trials_per_point; ++t)
                        result.trials[kv.first * trials_per_point + t] =
                            kv.second[t];
                    point_done[kv.first] = 1;
                    manifest.points[kv.first] = std::move(kv.second);
                }
                result.resumedPoints = manifest.points.size();
            } else {
                std::fprintf(stderr,
                             "warning: %s does not match this sweep "
                             "(grid/seed/trials changed) — restarting "
                             "from scratch\n",
                             manifest_path.c_str());
            }
        }
    }

    // Pending work: the flat trial indices of not-yet-complete points.
    std::vector<std::size_t> pending;
    pending.reserve(total);
    for (std::size_t idx = 0; idx < total; ++idx)
        if (!point_done[idx / trials_per_point])
            pending.push_back(idx);

    // Warm-state forking: one warmup per unique key with pending work.
    WarmTable warm;
    if (spec.warmup && !pending.empty())
        warm = buildWarmTable(spec, result.points, result.jobs,
                              opts_.resumeDir, manifest_matched,
                              point_done);

    // Per-point countdown driving the manifest flush; acq_rel on the
    // final decrement makes every sibling trial's record visible to
    // the flushing worker.
    std::unique_ptr<std::atomic<int>[]> remaining;
    std::mutex manifest_mu;
    std::atomic<bool> manifest_ok{true};
    if (resumable) {
        remaining.reset(new std::atomic<int>[result.points.size()]);
        for (std::size_t p = 0; p < result.points.size(); ++p)
            remaining[p].store(static_cast<int>(trials_per_point),
                               std::memory_order_relaxed);
    }

    // Work distribution: an atomic cursor over the pending-trial list.
    // Workers write only their own pre-sized slot, so no result
    // ordering depends on scheduling.
    std::atomic<std::size_t> cursor{0};
    std::mutex progress_mu;
    std::size_t completed = total - pending.size(); // under progress_mu
    std::mutex error_mu;
    std::size_t first_error_idx = total;
    std::string first_error_msg;

    auto record_error = [&](std::size_t idx, const std::string &msg) {
        {
            std::lock_guard<std::mutex> lock(error_mu);
            if (idx < first_error_idx) {
                first_error_idx = idx;
                first_error_msg = msg;
            }
        }
        // The sweep is doomed; drain the queue so in-flight trials are
        // the only remaining work instead of running the whole grid.
        cursor.store(pending.size());
    };

    auto worker = [&]() {
        for (;;) {
            std::size_t slot = cursor.fetch_add(1);
            if (slot >= pending.size())
                return;
            std::size_t idx = pending[slot];
            std::size_t point_idx = idx / trials_per_point;
            TrialRecord &rec = result.trials[idx];
            rec.pointIndex = point_idx;
            rec.trial = static_cast<int>(idx % trials_per_point);
            rec.seed = deriveTrialSeed(result.baseSeed, idx);
            TrialContext ctx{result.points[point_idx], point_idx,
                             rec.trial, rec.seed,
                             spec.warmup
                                 ? &warm.buffers[warm.pointToKey
                                                     [point_idx]]
                                 : nullptr};
            bool ok = true;
            try {
                rec.metrics = spec.run(ctx);
            } catch (const std::exception &e) {
                ok = false;
                record_error(idx, e.what());
            } catch (...) {
                // A non-std::exception escaping the worker thread would
                // otherwise std::terminate the whole process.
                ok = false;
                record_error(idx, "unknown exception type");
            }
            if (ok && resumable && manifest_ok.load() &&
                remaining[point_idx].fetch_sub(
                    1, std::memory_order_acq_rel) == 1) {
                // Last trial of this point: persist it. The whole-file
                // rewrite is atomic (temp + rename), so an interrupt
                // here costs at most this one point on restart.
                std::lock_guard<std::mutex> lock(manifest_mu);
                auto &recs = manifest.points[point_idx];
                recs.assign(result.trials.begin() +
                                point_idx * trials_per_point,
                            result.trials.begin() +
                                (point_idx + 1) * trials_per_point);
                try {
                    writeManifest(manifest_path, manifest);
                } catch (const std::exception &e) {
                    // Checkpointing is an optimization, never worth
                    // the sweep (and a throw would escape the thread
                    // and std::terminate): warn once and carry on
                    // without resume support.
                    if (manifest_ok.exchange(false))
                        std::fprintf(stderr,
                                     "warning: sweep checkpointing "
                                     "disabled: %s\n",
                                     e.what());
                }
            }
            if (opts_.progress) {
                // Count inside the lock so callbacks see a monotonic
                // completion sequence.
                std::lock_guard<std::mutex> lock(progress_mu);
                opts_.progress(++completed, total);
            }
        }
    };

    int n_workers = static_cast<int>(
        std::min<std::size_t>(result.jobs, pending.size()));
    if (n_workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n_workers);
        for (int i = 0; i < n_workers; ++i)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    result.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    if (first_error_idx < total) {
        throw std::runtime_error(
            "scenario '" + spec.name + "': trial " +
            std::to_string(first_error_idx) + " (" +
            result.points[first_error_idx / trials_per_point].toString() +
            ") failed: " + first_error_msg);
    }

    result.aggregates = aggregate(result.points, result.trials);
    return result;
}

} // namespace exp
} // namespace ich
