#include "exp/runner.hh"

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace ich
{
namespace exp
{

int
resolveJobs(int jobs)
{
    if (jobs > 0)
        return jobs;
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

SweepRunner::SweepRunner(RunnerOptions opts) : opts_(std::move(opts)) {}

SweepResult
SweepRunner::run(const ScenarioSpec &spec) const
{
    if (!spec.run)
        throw std::invalid_argument("SweepRunner: scenario '" + spec.name +
                                    "' has no trial function");

    SweepResult result;
    result.scenario = spec.name;
    result.description = spec.description;
    result.baseSeed = opts_.seed.value_or(spec.baseSeed);
    result.trialsPerPoint = opts_.trials.value_or(spec.trials);
    if (result.trialsPerPoint < 1)
        throw std::invalid_argument("SweepRunner: trials must be >= 1");
    result.points = expandPoints(spec);
    result.jobs = resolveJobs(opts_.jobs);

    const std::size_t trials_per_point =
        static_cast<std::size_t>(result.trialsPerPoint);
    const std::size_t total = result.points.size() * trials_per_point;
    result.trials.resize(total);

    // Work distribution: an atomic cursor over the flat global trial
    // index. Workers write only their own pre-sized slot, so no result
    // ordering depends on scheduling.
    std::atomic<std::size_t> cursor{0};
    std::mutex progress_mu;
    std::size_t completed = 0; // guarded by progress_mu
    std::mutex error_mu;
    std::size_t first_error_idx = total;
    std::string first_error_msg;

    auto record_error = [&](std::size_t idx, const std::string &msg) {
        {
            std::lock_guard<std::mutex> lock(error_mu);
            if (idx < first_error_idx) {
                first_error_idx = idx;
                first_error_msg = msg;
            }
        }
        // The sweep is doomed; drain the queue so in-flight trials are
        // the only remaining work instead of running the whole grid.
        cursor.store(total);
    };

    auto worker = [&]() {
        for (;;) {
            std::size_t idx = cursor.fetch_add(1);
            if (idx >= total)
                return;
            std::size_t point_idx = idx / trials_per_point;
            TrialRecord &rec = result.trials[idx];
            rec.pointIndex = point_idx;
            rec.trial = static_cast<int>(idx % trials_per_point);
            rec.seed = deriveTrialSeed(result.baseSeed, idx);
            TrialContext ctx{result.points[point_idx], point_idx, rec.trial,
                             rec.seed};
            try {
                rec.metrics = spec.run(ctx);
            } catch (const std::exception &e) {
                record_error(idx, e.what());
            } catch (...) {
                // A non-std::exception escaping the worker thread would
                // otherwise std::terminate the whole process.
                record_error(idx, "unknown exception type");
            }
            if (opts_.progress) {
                // Count inside the lock so callbacks see a monotonic
                // completion sequence.
                std::lock_guard<std::mutex> lock(progress_mu);
                opts_.progress(++completed, total);
            }
        }
    };

    auto t0 = std::chrono::steady_clock::now();
    int n_workers =
        static_cast<int>(std::min<std::size_t>(result.jobs, total));
    if (n_workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n_workers);
        for (int i = 0; i < n_workers; ++i)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    result.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    if (first_error_idx < total) {
        throw std::runtime_error(
            "scenario '" + spec.name + "': trial " +
            std::to_string(first_error_idx) + " (" +
            result.points[first_error_idx / trials_per_point].toString() +
            ") failed: " + first_error_msg);
    }

    result.aggregates = aggregate(result.points, result.trials);
    return result;
}

} // namespace exp
} // namespace ich
