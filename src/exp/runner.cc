#include "exp/runner.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "exp/colstore.hh"
#include "exp/resume.hh"
#include "state/archive.hh"

namespace ich
{
namespace exp
{

namespace
{

/**
 * Warm-state snapshot table: one buffer per unique warmup key, shared
 * by every trial of the points mapping to that key.
 */
struct WarmTable {
    std::vector<std::string> keys; ///< first-seen order
    std::vector<state::Buffer> buffers;
    std::vector<std::size_t> pointToKey; ///< point index -> keys index
};

/**
 * Group points by warmup key and materialize each key's snapshot,
 * skipping keys whose every point is already complete (@p point_done).
 * Cached `.snap` files are reused only when @p trust_cache — i.e. the
 * result directory's store matched this sweep, the sole witness that
 * the cache was produced by the same warmup; otherwise they are
 * recomputed and overwritten. Computation fans out on @p jobs workers:
 * warmups are independent by the determinism contract.
 */
WarmTable
buildWarmTable(const ScenarioSpec &spec,
               const std::vector<ParamPoint> &points, int jobs,
               const std::string &resume_dir, bool trust_cache,
               const std::vector<char> &point_done)
{
    WarmTable table;
    table.pointToKey.resize(points.size());
    std::unordered_map<std::string, std::size_t> index;
    for (std::size_t i = 0; i < points.size(); ++i) {
        std::string key = spec.warmupKey ? spec.warmupKey(points[i])
                                         : points[i].toString();
        auto it = index.find(key);
        if (it == index.end()) {
            it = index.emplace(key, table.keys.size()).first;
            table.keys.push_back(std::move(key));
        }
        table.pointToKey[i] = it->second;
    }
    table.buffers.resize(table.keys.size());

    // Representative point per key (first point mapping to it), and
    // whether any of the key's points still has trials to run — fully
    // resumed keys never warm.
    std::vector<std::size_t> rep(table.keys.size(), points.size());
    std::vector<char> needed(table.keys.size(), 0);
    for (std::size_t i = points.size(); i-- > 0;) {
        rep[table.pointToKey[i]] = i;
        if (!point_done[i])
            needed[table.pointToKey[i]] = 1;
    }

    std::vector<char> have(table.keys.size(), 0);
    if (!resume_dir.empty() && trust_cache) {
        for (std::size_t k = 0; k < table.keys.size(); ++k) {
            if (!needed[k])
                continue;
            std::string path =
                warmSnapshotPath(resume_dir, spec.name, table.keys[k]);
            try {
                state::Buffer cached = state::readFile(path);
                state::ArchiveReader validate(cached); // CRC/version
                table.buffers[k] = std::move(cached);
                have[k] = 1;
            } catch (const state::ArchiveError &) {
                // Missing or corrupt cache entry: recompute below.
            }
        }
    }

    std::atomic<std::size_t> cursor{0};
    std::mutex error_mu;
    std::string first_error;
    auto worker = [&]() {
        for (;;) {
            std::size_t k = cursor.fetch_add(1);
            if (k >= table.keys.size())
                return;
            if (have[k] || !needed[k])
                continue;
            try {
                table.buffers[k] = spec.warmup(points[rep[k]]);
            } catch (const std::exception &e) {
                std::lock_guard<std::mutex> lock(error_mu);
                if (first_error.empty())
                    first_error = e.what();
            }
        }
    };
    int n_workers = static_cast<int>(
        std::min<std::size_t>(jobs, table.keys.size()));
    if (n_workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n_workers);
        for (int i = 0; i < n_workers; ++i)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    if (!first_error.empty())
        throw std::runtime_error("scenario '" + spec.name +
                                 "': warmup failed: " + first_error);

    if (!resume_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(resume_dir, ec);
        for (std::size_t k = 0; k < table.keys.size(); ++k) {
            if (have[k] || !needed[k])
                continue;
            state::atomicWriteFile(
                warmSnapshotPath(resume_dir, spec.name, table.keys[k]),
                table.buffers[k]);
        }
    }
    return table;
}

} // namespace

int
resolveJobs(int jobs)
{
    if (jobs > 0)
        return jobs;
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

SweepRunner::SweepRunner(RunnerOptions opts) : opts_(std::move(opts)) {}

StreamStats
SweepRunner::runStreaming(const ScenarioSpec &spec, ResultSink &sink) const
{
    if (!spec.run)
        throw std::invalid_argument("SweepRunner: scenario '" + spec.name +
                                    "' has no trial function");

    SweepMeta meta;
    meta.scenario = spec.name;
    meta.description = spec.description;
    meta.baseSeed = opts_.seed.value_or(spec.baseSeed);
    meta.trialsPerPoint = opts_.trials.value_or(spec.trials);
    if (meta.trialsPerPoint < 1)
        throw std::invalid_argument("SweepRunner: trials must be >= 1");
    meta.points = expandPoints(spec);
    meta.gridFp = gridFingerprint(meta.points);

    StreamStats stats;
    stats.points = meta.points.size();
    stats.jobs = resolveJobs(opts_.jobs);

    const std::size_t trials_per_point =
        static_cast<std::size_t>(meta.trialsPerPoint);
    const std::size_t n_points = meta.points.size();
    const std::size_t total = n_points * trials_per_point;

    auto t0 = std::chrono::steady_clock::now();

    sink.beginSweep(meta);

    // Resume: replay points completed by a previous matching run into
    // the sink (index order), before warmups so fully resumed warm
    // groups are never re-simulated, and so the warm-snapshot cache is
    // reused only when the store vouches for the result directory.
    std::vector<char> point_done(n_points, 0);
    const bool resumable = !opts_.resumeDir.empty();
    bool store_matched = false;
    std::string store_path;
    if (resumable) {
        store_path = resultStorePath(opts_.resumeDir, meta.scenario);
        try {
            ColumnStoreReader prior(store_path);
            if (prior.matches(meta)) {
                store_matched = true;
                prior.forEachPoint(
                    [&](std::size_t idx,
                        const std::vector<TrialRecord> &records) {
                        sink.acceptPoint(idx, records.data(),
                                         records.size());
                        point_done[idx] = 1;
                        ++stats.resumedPoints;
                    });
            } else {
                std::fprintf(stderr,
                             "warning: %s does not match this sweep "
                             "(grid/seed/trials changed) — restarting "
                             "from scratch\n",
                             store_path.c_str());
            }
        } catch (const state::ArchiveError &) {
            // Missing or unusable store: start fresh.
        }
    }

    // Durable checkpoint: O(1) fsync'd append per completed point. The
    // writer adopts a matching store (it will not re-append the points
    // replayed above) and recreates a stale one. Checkpointing is an
    // optimization, never worth the sweep: any failure warns once and
    // disables it.
    std::unique_ptr<ColumnStoreWriter> checkpoint;
    std::atomic<bool> checkpoint_ok{false};
    if (resumable) {
        try {
            ColumnStoreWriter::Options copts;
            copts.durable = true;
            checkpoint.reset(new ColumnStoreWriter(store_path, copts));
            checkpoint->beginSweep(meta);
            checkpoint_ok.store(true);
        } catch (const std::exception &e) {
            std::fprintf(stderr,
                         "warning: sweep checkpointing disabled: %s\n",
                         e.what());
            checkpoint.reset();
        }
    }

    // Pending work: the flat trial indices of not-yet-complete points,
    // point-major — workers march through one point's trials before
    // opening the next, so the open-point set stays O(jobs). The list
    // is implicit (a cursor over [0, total) that skips resumed points):
    // materializing it would cost O(total trials) memory, the very
    // class of residual the streaming path exists to avoid.
    std::size_t done_points = 0;
    for (std::size_t p = 0; p < n_points; ++p)
        done_points += point_done[p] ? 1 : 0;
    const std::size_t pending_trials =
        (n_points - done_points) * trials_per_point;

    // Warm-state forking: one warmup per unique key with pending work.
    WarmTable warm;
    if (spec.warmup && pending_trials > 0)
        warm = buildWarmTable(spec, meta.points, stats.jobs,
                              opts_.resumeDir, store_matched,
                              point_done);

    // In-flight point buffers, allocated on first touch and released
    // the moment the point is handed to the sink. The outer vector is
    // index stability (never resized); only the inner vectors churn.
    std::vector<std::vector<TrialRecord>> open(n_points);
    std::mutex open_mu;

    // Per-point countdown driving the sink hand-off; acq_rel on the
    // final decrement makes every sibling trial's record visible to
    // the handing worker.
    std::unique_ptr<std::atomic<int>[]> remaining(
        new std::atomic<int>[n_points]);
    for (std::size_t p = 0; p < n_points; ++p)
        remaining[p].store(static_cast<int>(trials_per_point),
                           std::memory_order_relaxed);

    // Work distribution: an atomic cursor over the flat trial range.
    // Workers write only their own trial slot, so no result ordering
    // depends on scheduling.
    std::atomic<std::size_t> cursor{0};
    std::mutex sink_mu;
    std::mutex progress_mu;
    std::size_t completed = total - pending_trials; // under progress_mu
    std::mutex error_mu;
    std::size_t first_error_idx = total;
    std::string first_error_msg;

    auto record_error = [&](std::size_t idx, const std::string &msg) {
        {
            std::lock_guard<std::mutex> lock(error_mu);
            if (idx < first_error_idx) {
                first_error_idx = idx;
                first_error_msg = msg;
            }
        }
        // The sweep is doomed; drain the queue so in-flight trials are
        // the only remaining work instead of running the whole grid.
        cursor.store(total);
    };

    auto worker = [&]() {
        for (;;) {
            std::size_t idx = cursor.fetch_add(1);
            if (idx >= total)
                return;
            std::size_t point_idx = idx / trials_per_point;
            if (point_done[point_idx])
                continue; // resumed point: already in the sink
            {
                // First toucher allocates the point's trial buffer;
                // afterwards siblings write disjoint slots lock-free.
                std::lock_guard<std::mutex> lock(open_mu);
                if (open[point_idx].empty())
                    open[point_idx].resize(trials_per_point);
            }
            TrialRecord &rec =
                open[point_idx][idx % trials_per_point];
            rec.pointIndex = point_idx;
            rec.trial = static_cast<int>(idx % trials_per_point);
            rec.seed = deriveTrialSeed(meta.baseSeed, idx);
            TrialContext ctx{meta.points[point_idx], point_idx,
                             rec.trial, rec.seed,
                             spec.warmup
                                 ? &warm.buffers[warm.pointToKey
                                                     [point_idx]]
                                 : nullptr};
            bool ok = true;
            try {
                rec.metrics = spec.run(ctx);
            } catch (const std::exception &e) {
                ok = false;
                record_error(idx, e.what());
            } catch (...) {
                // A non-std::exception escaping the worker thread would
                // otherwise std::terminate the whole process.
                ok = false;
                record_error(idx, "unknown exception type");
            }
            if (ok && remaining[point_idx].fetch_sub(
                          1, std::memory_order_acq_rel) == 1) {
                // Last trial of this point: hand it to the sink and
                // drop the buffer. Sink calls are serialized here.
                std::lock_guard<std::mutex> lock(sink_mu);
                std::vector<TrialRecord> records;
                records.swap(open[point_idx]);
                sink.acceptPoint(point_idx, records.data(),
                                 records.size());
                if (checkpoint_ok.load()) {
                    try {
                        checkpoint->acceptPoint(point_idx,
                                                records.data(),
                                                records.size());
                    } catch (const std::exception &e) {
                        // A throw would escape the thread and
                        // std::terminate: warn once and carry on
                        // without resume support.
                        if (checkpoint_ok.exchange(false))
                            std::fprintf(stderr,
                                         "warning: sweep checkpointing "
                                         "disabled: %s\n",
                                         e.what());
                    }
                }
            }
            if (opts_.progress) {
                // Count inside the lock so callbacks see a monotonic
                // completion sequence.
                std::lock_guard<std::mutex> lock(progress_mu);
                opts_.progress(++completed, total);
            }
        }
    };

    int n_workers = static_cast<int>(
        std::min<std::size_t>(stats.jobs, pending_trials));
    if (n_workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n_workers);
        for (int i = 0; i < n_workers; ++i)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    stats.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    if (first_error_idx < total) {
        throw std::runtime_error(
            "scenario '" + spec.name + "': trial " +
            std::to_string(first_error_idx) + " (" +
            meta.points[first_error_idx / trials_per_point].toString() +
            ") failed: " + first_error_msg);
    }

    sink.endSweep();
    if (checkpoint_ok.load()) {
        try {
            checkpoint->endSweep();
        } catch (const std::exception &e) {
            std::fprintf(stderr,
                         "warning: result store footer not written: "
                         "%s\n",
                         e.what());
        }
    }
    return stats;
}

SweepResult
SweepRunner::run(const ScenarioSpec &spec) const
{
    MaterializeSink materialize;
    StreamStats stats = runStreaming(spec, materialize);
    SweepResult result = materialize.take();
    result.jobs = stats.jobs;
    result.wallSeconds = stats.wallSeconds;
    result.resumedPoints = stats.resumedPoints;
    result.aggregates = aggregate(result.points, result.trials);
    return result;
}

} // namespace exp
} // namespace ich
