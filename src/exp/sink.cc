#include "exp/sink.hh"

#include <map>
#include <stdexcept>

namespace ich
{
namespace exp
{

// -------------------------------------------------- MaterializeSink

void
MaterializeSink::beginSweep(const SweepMeta &meta)
{
    result_ = SweepResult();
    result_.scenario = meta.scenario;
    result_.description = meta.description;
    result_.baseSeed = meta.baseSeed;
    result_.trialsPerPoint = meta.trialsPerPoint;
    result_.points = meta.points;
    trialsPerPoint_ = static_cast<std::size_t>(meta.trialsPerPoint);
    result_.trials.resize(result_.points.size() * trialsPerPoint_);
}

void
MaterializeSink::acceptPoint(std::size_t point_idx,
                             const TrialRecord *records, std::size_t count)
{
    if (point_idx >= result_.points.size())
        throw std::out_of_range(
            "MaterializeSink: point beyond the grid");
    if (count != trialsPerPoint_)
        throw std::invalid_argument(
            "MaterializeSink: wrong trial count for point");
    for (std::size_t t = 0; t < count; ++t)
        result_.trials[point_idx * trialsPerPoint_ + t] = records[t];
}

SweepResult
MaterializeSink::take()
{
    return std::move(result_);
}

// ----------------------------------------------- StreamingAggregator

void
StreamingAggregator::beginSweep(const SweepMeta &meta)
{
    aggregates_.clear();
    aggregates_.resize(meta.points.size());
    for (std::size_t i = 0; i < meta.points.size(); ++i)
        aggregates_[i].point = meta.points[i];
    names_.clear();
    completed_ = 0;
}

void
StreamingAggregator::acceptPoint(std::size_t point_idx,
                                 const TrialRecord *records,
                                 std::size_t count)
{
    if (point_idx >= aggregates_.size())
        throw std::out_of_range(
            "StreamingAggregator: point beyond the grid");
    // Per-metric sample lists in trial order: the exact construction
    // serial aggregate() uses, so summaries match it bit-for-bit.
    std::map<std::string, std::vector<double>> samples;
    for (std::size_t t = 0; t < count; ++t)
        for (const auto &kv : records[t].metrics)
            samples[kv.first].push_back(kv.second);
    PointAggregate &pa = aggregates_[point_idx];
    pa.metrics.clear();
    for (const auto &kv : samples) {
        pa.metrics[kv.first] = MetricSummary::fromSamples(kv.second);
        names_.insert(kv.first);
    }
    ++completed_;
}

std::vector<std::string>
StreamingAggregator::metricNames() const
{
    return std::vector<std::string>(names_.begin(), names_.end());
}

} // namespace exp
} // namespace ich
