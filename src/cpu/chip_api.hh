/**
 * @file
 * Interface the CPU core model uses to reach chip-level services (event
 * queue, clocking, TSC, power-management notifications) without depending
 * on the concrete Chip/PMU types. Chip implements this interface.
 */

#ifndef ICH_CPU_CHIP_API_HH
#define ICH_CPU_CHIP_API_HH

#include "common/event_queue.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "isa/inst_class.hh"

namespace ich
{

/** Chip services visible to cores and threads. */
class ChipApi
{
  public:
    virtual ~ChipApi() = default;

    virtual EventQueue &eventQueue() = 0;
    virtual Rng &rng() = 0;

    /** Current core clock frequency (all cores share one PLL). */
    virtual double freqGhz() const = 0;

    /** Invariant TSC (counts at the base clock regardless of P-state). */
    virtual Cycles tscNow() const = 0;
    /** Invariant TSC value at simulated time @p t (record backdating). */
    virtual Cycles tscAt(Time t) const = 0;
    /** Invariant TSC rate, GHz (hoisted out of record-emission loops;
     *  tscAt(t) == llround(double(t) * tscGhz() / 1000.0)). */
    virtual double tscGhz() const = 0;
    virtual Time tscToTime(Cycles tsc) const = 0;

    /**
     * A thread began executing a loop of @p cls. The PMU decides whether
     * a guardband increase (and hence throttling) is needed.
     */
    virtual void phiStarted(CoreId core, int smt, InstClass cls) = 0;

    /** A loop of @p cls finished (hysteresis bookkeeping). */
    virtual void kernelEnded(CoreId core, int smt, InstClass cls) = 0;

    /** Thread activity (and hence chip current draw) changed. */
    virtual void activityChanged() = 0;
};

} // namespace ich

#endif // ICH_CPU_CHIP_API_HH
