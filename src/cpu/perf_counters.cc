#include "cpu/perf_counters.hh"

#include "state/snapshot.hh"

namespace ich
{

void
PerfCounters::saveState(state::SaveContext &ctx) const
{
    ctx.w().putF64(clkUnhalted_);
    ctx.w().putF64(instRetired_);
    ctx.w().putF64(idqNotDelivered_);
}

void
PerfCounters::restoreState(state::SectionReader &r)
{
    clkUnhalted_ = r.getF64();
    instRetired_ = r.getF64();
    idqNotDelivered_ = r.getF64();
}

} // namespace ich
