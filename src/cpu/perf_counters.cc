#include "cpu/perf_counters.hh"

// Header-only accrual arithmetic; translation unit kept for ODR symmetry
// with the rest of the cpu module.
