/**
 * @file
 * Hardware-thread execution model.
 *
 * A thread runs a Program step by step. Loop kernels advance at a
 * piecewise-constant rate (core frequency / per-iteration cycles /
 * throttle slowdown); the thread integrates progress analytically between
 * simulator events and schedules its own next boundary (step completion,
 * chunk record, stall end). This gives exact timing without per-cycle
 * simulation, which matters because a single covert-channel transaction
 * spans ~2 million core cycles (40 µs TX + 650 µs reset-time).
 */

#ifndef ICH_CPU_THREAD_HH
#define ICH_CPU_THREAD_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/event_queue.hh"
#include "common/types.hh"
#include "cpu/chip_api.hh"
#include "cpu/perf_counters.hh"
#include "isa/program.hh"
#include "state/fwd.hh"

namespace ich
{

class Core;

/** One SMT hardware thread. */
class HwThread
{
  public:
    HwThread(Core &core, ChipApi &chip, CoreId core_id, int smt_idx);

    // Not copyable/movable: threads self-reference via scheduled events.
    HwThread(const HwThread &) = delete;
    HwThread &operator=(const HwThread &) = delete;

    /** Install a program (thread must not be running). */
    void setProgram(Program prog);

    /** Begin executing the installed program at the current time. */
    void start();

    bool started() const { return started_; }
    bool done() const { return done_; }

    /**
     * True while the thread is executing instructions (loop or rdtsc
     * spin) — i.e. contributes dynamic power and unhalted cycles.
     */
    bool activeNow() const;

    /** Instruction class currently executing, if any. */
    std::optional<InstClass> currentClass() const;

    /** Timestamp records produced by Mark/chunked-Loop steps. */
    const std::vector<Record> &records() const { return records_; }

    PerfCounters &counters() { return counters_; }
    const PerfCounters &counters() const { return counters_; }

    /**
     * Inject an execution stall (interrupt / context switch noise). The
     * thread stops making forward progress for @p duration but remains
     * unhalted.
     */
    void stallFor(Time duration);

    /** Integrate progress up to now at the current rates. */
    void accrue();

    /**
     * Accrue, process step transitions, and reschedule the next boundary
     * event. Reentrancy-safe: calls arriving while a refresh is running
     * are coalesced.
     */
    void refresh();

    int smtIndex() const { return smtIdx_; }
    CoreId coreId() const { return coreId_; }

    /** Completed iterations of the current loop step (tests). */
    double loopIterationsDone() const { return itersDone_; }

    /**
     * Snapshot hooks. Programs contain closures (CallStep) and so are
     * never serialized: a thread must be idle (done or not started) at
     * the quiesce point; saveState() throws otherwise. Counters,
     * records and accrual marks round-trip bit-exactly, and the
     * restored thread accepts a fresh setProgram()/start() exactly like
     * the original would.
     */
    void saveState(state::SaveContext &ctx) const;
    void restoreState(state::SectionReader &r, state::RestoreContext &ctx);

  private:
    Core &core_;
    ChipApi &chip_;
    CoreId coreId_;
    int smtIdx_;

    Program prog_;
    std::size_t stepIdx_ = 0;
    bool started_ = false;
    bool done_ = false;
    bool enteredStep_ = false;

    // Loop-step progress.
    double itersDone_ = 0.0;
    double nextRecordIters_ = 0.0;

    // Idle-step end time (set on entry).
    Time idleEnd_ = 0;

    Time lastAccrue_ = 0;
    Time stallUntil_ = 0;

    PerfCounters counters_;
    std::vector<Record> records_;

    // Event management.
    std::uint64_t generation_ = 0;
    EventId boundaryEvent_ = EventQueue::kInvalidEvent;
    bool inRefresh_ = false;
    bool pendingRefresh_ = false;

    const LoopStep *currentLoop() const;
    /** Picoseconds per loop iteration at current freq/throttle state. */
    double iterationPicos(const LoopStep &step) const;
    void advance();
    void enterStep();
    void scheduleBoundary();
    void emitRecord(int tag, std::uint64_t iters_done);
    void finishLoopStep(const LoopStep &step);
};

} // namespace ich

#endif // ICH_CPU_THREAD_HH
