/**
 * @file
 * Hardware-thread execution model.
 *
 * A thread runs a Program step by step. Loop kernels advance at a
 * piecewise-constant rate (core frequency / per-iteration cycles /
 * throttle slowdown); the thread integrates progress analytically between
 * simulator events and schedules its own next boundary. This gives exact
 * timing without per-cycle simulation, which matters because a single
 * covert-channel transaction spans ~2 million core cycles (40 µs TX +
 * 650 µs reset-time).
 *
 * Chunk records are materialized analytically: between state
 * transitions the iteration rate is constant, so every chunk-record
 * timestamp in an interval is computable in closed form. accrue()
 * replays the per-chunk boundary recurrence over [lastAccrue, now) —
 * splitting at the stall end and at each record crossing, with
 * arithmetic bit-identical to the per-chunk event path — and the
 * thread's single boundary event targets only *real* state changes:
 * step end, stall end, or a replay-horizon checkpoint. External rate
 * changes invalidate the deferral: throttle flips arrive through
 * Core::touch() (accrue-before-change, as always), and frequency
 * changes arrive through Chip::beforeFreqChange() →
 * materializePending(), which flushes crossed records at the old rate.
 * Event count per loop step drops from O(iterations/recordEvery) to
 * O(state transitions) — the former dominated full-chip runs.
 */

#ifndef ICH_CPU_THREAD_HH
#define ICH_CPU_THREAD_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/event_queue.hh"
#include "common/types.hh"
#include "cpu/chip_api.hh"
#include "cpu/perf_counters.hh"
#include "isa/program.hh"
#include "state/fwd.hh"

namespace ich
{

class Core;

/** One SMT hardware thread. */
class HwThread
{
  public:
    HwThread(Core &core, ChipApi &chip, CoreId core_id, int smt_idx);

    // Not copyable/movable: threads self-reference via scheduled events.
    HwThread(const HwThread &) = delete;
    HwThread &operator=(const HwThread &) = delete;

    /** Install a program (thread must not be running). */
    void setProgram(Program prog);

    /** Begin executing the installed program at the current time. */
    void start();

    bool started() const { return started_; }
    bool done() const { return done_; }

    /**
     * True while the thread is executing instructions (loop or rdtsc
     * spin) — i.e. contributes dynamic power and unhalted cycles.
     */
    bool activeNow() const;

    /** Instruction class currently executing, if any. */
    std::optional<InstClass> currentClass() const;

    /**
     * Timestamp records produced by Mark/chunked-Loop steps. Flushes
     * analytically-deferred chunk records up to now() first, so mid-run
     * readers (channels, spy, baselines) see exactly what the per-chunk
     * event path would have emitted by this time.
     */
    const std::vector<Record> &records() const;

    /** Counters, flushed like records() (accruals up to the last
     *  boundary the per-chunk event path would have crossed). */
    PerfCounters &counters();
    const PerfCounters &counters() const;

    /**
     * Inject an execution stall (interrupt / context switch noise). The
     * thread stops making forward progress for @p duration but remains
     * unhalted.
     */
    void stallFor(Time duration);

    /** Integrate progress up to now at the current rates. */
    void accrue();

    /**
     * Materialize deferred chunk records (and their accrual segments)
     * up to now at the current rates, without accruing the partial tail
     * past the last crossed boundary. Chip calls this on every thread
     * immediately before a frequency change; the flushing accessors use
     * it too. No-op when nothing is deferred.
     */
    void materializePending();

    /**
     * Revert to the per-chunk event-driven path: one boundary event per
     * recordEveryIterations chunk, records emitted at event dispatch.
     * Kept as the measured baseline (bench/perf_kernel BENCH_record)
     * and the byte-identity oracle for the analytic path in tests; set
     * before start().
     */
    void setLegacyChunkEvents(bool legacy) { legacyChunkEvents_ = legacy; }

    /**
     * Accrue, process step transitions, and reschedule the next boundary
     * event. Reentrancy-safe: calls arriving while a refresh is running
     * are coalesced.
     */
    void refresh();

    int smtIndex() const { return smtIdx_; }
    CoreId coreId() const { return coreId_; }

    /** Completed iterations of the current loop step (tests); flushed
     *  like records(). */
    double loopIterationsDone() const;

    /**
     * Snapshot hooks. Programs contain closures (CallStep) and so are
     * never serialized: a thread must be idle (done or not started) at
     * the quiesce point; saveState() throws otherwise. Analytic record
     * materialization joins the same contract: an idle thread has, by
     * construction, no deferred records (the completion event flushed
     * them), which saveState() re-checks loudly. Counters, records and
     * accrual marks round-trip bit-exactly, and the restored thread
     * accepts a fresh setProgram()/start() exactly like the original
     * would.
     */
    void saveState(state::SaveContext &ctx) const;
    void restoreState(state::SectionReader &r, state::RestoreContext &ctx);

  private:
    Core &core_;
    ChipApi &chip_;
    CoreId coreId_;
    int smtIdx_;

    Program prog_;
    std::size_t stepIdx_ = 0;
    bool started_ = false;
    bool done_ = false;
    bool enteredStep_ = false;

    // Loop-step progress.
    double itersDone_ = 0.0;
    double nextRecordIters_ = 0.0;

    // Idle-step end time (set on entry).
    Time idleEnd_ = 0;

    Time lastAccrue_ = 0;
    Time stallUntil_ = 0;

    PerfCounters counters_;
    std::vector<Record> records_;

    // Event management.
    EventId boundaryEvent_ = EventQueue::kInvalidEvent;
    bool inRefresh_ = false;
    bool pendingRefresh_ = false;
    bool legacyChunkEvents_ = false;

    const LoopStep *currentLoop() const;
    /** Picoseconds per loop iteration at current freq/throttle state. */
    double iterationPicos(const LoopStep &step) const;
    void advance();
    void enterStep();
    void scheduleBoundary();
    void emitRecord(int tag, std::uint64_t iters_done);
    void emitRecordAt(int tag, std::uint64_t iters_done, Time at);
    void finishLoopStep(const LoopStep &step);

    /**
     * Boundary crossing precomputed by scheduleBoundary()'s dry run and
     * consumed by the materializer, so the recurrence arithmetic runs
     * once per record instead of twice. An entry is usable only while
     * the replay anchor still matches (any external accrue between
     * boundaries re-anchors the recurrence and strands the tail, which
     * the materializer then recomputes directly).
     */
    struct PendingBoundary {
        Time anchor;        ///< lastAccrue_ value this entry extends
        Time when;          ///< boundary-event time
        double itersAfter;  ///< itersDone_ after accruing [anchor, when)
        double nextRecAfter; ///< nextRecordIters_ after the emission
        double cycles;      ///< unhalted cycles of [anchor, when)
        Record rec;         ///< staged record payload (recCount == 1)
        int recCount;       ///< records crossed at this boundary
    };
    std::vector<PendingBoundary> replayCache_;
    std::size_t replayCacheHead_ = 0;
    /** Current dry-run window (kMinReplayBoundaries..kMax, adaptive). */
    int replayDepth_ = 4;

    /** One accrual segment [t0, t1) at current rates (legacy accrue
     *  body; counters + loop iteration progress). */
    void accrueSegment(Time t0, Time t1);
    /** Emit every chunk record whose boundary has been crossed, stamped
     *  at time @p at (legacy advance() emission loop). @p tsc_ghz is
     *  the caller-hoisted invariant TSC rate. */
    void emitCrossedRecords(const LoopStep &loop, Time at,
                            double tsc_ghz);
    /** Replay boundary crossings in [lastAccrue_, t1] for @p loop. */
    void materializeLoop(const LoopStep &loop, Time t1);
    /** Next boundary-event time for the current step (mode-aware). */
    Time nextBoundaryTime();
    /** Dry-run the boundary recurrence to the step end (or the replay
     *  cap), filling replayCache_ and returning the time of the next
     *  *scheduled* boundary. */
    Time dryRunLoopBoundary(const LoopStep &loop, Time anchor);
};

} // namespace ich

#endif // ICH_CPU_THREAD_HH
