#include "cpu/core.hh"

#include <algorithm>

#include "isa/inst_class.hh"
#include "state/snapshot.hh"

namespace ich
{

Core::Core(ChipApi &chip, CoreId id, const CoreConfig &cfg)
    : chip_(chip), id_(id), cfg_(cfg), throttle_(cfg.throttle),
      avxGate_(chip.eventQueue(), chip.rng(), cfg.avxGate)
{
    for (int i = 0; i < cfg_.smtThreads; ++i)
        threads_.push_back(std::make_unique<HwThread>(*this, chip_, id_,
                                                      i));
}

void
Core::touch()
{
    for (auto &t : threads_)
        t->accrue();
}

void
Core::refresh()
{
    for (auto &t : threads_)
        t->refresh();
}

void
Core::materializePending()
{
    for (auto &t : threads_)
        t->materializePending();
}

bool
Core::anyThreadActive() const
{
    for (const auto &t : threads_)
        if (t->activeNow())
            return true;
    return false;
}

int
Core::activeGbLevelNow() const
{
    int lvl = 0;
    for (const auto &t : threads_) {
        if (auto cls = t->currentClass())
            lvl = std::max(lvl, traits(*cls).guardbandLevel);
    }
    return lvl;
}

double
Core::cdynActiveNf() const
{
    if (!anyThreadActive())
        return 0.0;
    double max_delta = 0.0;
    for (const auto &t : threads_) {
        if (auto cls = t->currentClass())
            max_delta = std::max(max_delta, traits(*cls).deltaCdynNf);
    }
    return cfg_.cdynBaseNf + max_delta;
}

void
Core::saveState(state::SaveContext &ctx) const
{
    throttle_.saveState(ctx);
    avxGate_.saveState(ctx);
    for (const auto &t : threads_)
        t->saveState(ctx);
}

void
Core::restoreState(state::SectionReader &r, state::RestoreContext &ctx)
{
    throttle_.restoreState(r);
    avxGate_.restoreState(r);
    for (auto &t : threads_)
        t->restoreState(r, ctx);
}

} // namespace ich
