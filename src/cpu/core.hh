/**
 * @file
 * CPU core: up to two SMT hardware threads sharing a front-end throttle
 * unit and an AVX-unit power gate (Figure 1's per-core blocks).
 */

#ifndef ICH_CPU_CORE_HH
#define ICH_CPU_CORE_HH

#include <memory>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "cpu/chip_api.hh"
#include "cpu/thread.hh"
#include "cpu/throttle_unit.hh"
#include "pdn/power_gate.hh"
#include "state/fwd.hh"

namespace ich
{

/** Per-core configuration. */
struct CoreConfig {
    int smtThreads = 1;
    ThrottleConfig throttle;
    PowerGateConfig avxGate;
    /** Baseline (scalar power-virus) dynamic capacitance, nF. */
    double cdynBaseNf = 2.2;
    /** Per-core leakage current, amps. */
    double leakageAmps = 1.0;
};

/** One physical core. */
class Core
{
  public:
    Core(ChipApi &chip, CoreId id, const CoreConfig &cfg);

    Core(const Core &) = delete;
    Core &operator=(const Core &) = delete;

    CoreId id() const { return id_; }
    int numThreads() const { return static_cast<int>(threads_.size()); }
    HwThread &thread(int i) { return *threads_.at(i); }
    const HwThread &thread(int i) const { return *threads_.at(i); }

    ThrottleUnit &throttle() { return throttle_; }
    const ThrottleUnit &throttle() const { return throttle_; }

    PowerGate &avxGate() { return avxGate_; }

    const CoreConfig &config() const { return cfg_; }

    /** Accrue all threads' progress at their current rates. */
    void touch();

    /** Touch + advance steps + reschedule all threads. */
    void refresh();

    /**
     * Materialize all threads' analytically-deferred chunk records at
     * the current rates, *without* accruing the partial tail past the
     * last crossed boundary (that tail belongs to whatever rate applies
     * when it is eventually accrued). Called before a frequency change.
     */
    void materializePending();

    /** Any thread executing instructions right now? */
    bool anyThreadActive() const;

    /**
     * Instantaneous core dynamic capacitance (nF): baseline if active
     * plus the largest ΔCdyn among concurrently-executing classes (the
     * vector unit is shared between SMT threads).
     */
    double cdynActiveNf() const;

    /** Highest guardband level among classes executing right now. */
    int activeGbLevelNow() const;

    double leakageAmps() const { return cfg_.leakageAmps; }

    /** Snapshot hooks (throttle unit, AVX gate, threads). */
    void saveState(state::SaveContext &ctx) const;
    void restoreState(state::SectionReader &r, state::RestoreContext &ctx);

  private:
    ChipApi &chip_;
    CoreId id_;
    CoreConfig cfg_;
    ThrottleUnit throttle_;
    PowerGate avxGate_;
    std::vector<std::unique_ptr<HwThread>> threads_;
};

} // namespace ich

#endif // ICH_CPU_CORE_HH
