/**
 * @file
 * Core execution-throttling mechanism (paper §5.6, Figure 11).
 *
 * While a voltage transition (or P-state transition) is pending, the core
 * blocks the IDQ→back-end interface during 3 of every 4 clock cycles, so
 * effective IPC drops to 1/4 — for *both* SMT threads, because the
 * interface is shared (Key Conclusion 5).
 *
 * The "Improved Core Throttling" mitigation (§7) changes this to block
 * only uops of the PHI-issuing thread, and only PHI uops — implemented by
 * the perThread flag consulted in slowdownFactor().
 */

#ifndef ICH_CPU_THROTTLE_UNIT_HH
#define ICH_CPU_THROTTLE_UNIT_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "isa/inst_class.hh"
#include "state/fwd.hh"

namespace ich
{

/** Why the core is being throttled. */
enum class ThrottleReason {
    kVoltageRamp = 0, ///< waiting for a guardband up-transition
    kPstate = 1,      ///< frequency/voltage P-state transition in flight
};

constexpr int kNumThrottleReasons = 2;

/** Throttle-unit configuration. */
struct ThrottleConfig {
    /** IDQ delivery duty cycle: deliver 1 cycle out of every... */
    int windowCycles = 4;
    /**
     * Mitigation (§7 "Improved Core Throttling"): throttle only the
     * initiating SMT thread, and only its PHI uops.
     */
    bool perThread = false;
};

/**
 * Tracks throttle assertions per reason and computes the execution
 * slowdown each thread currently experiences.
 */
class ThrottleUnit
{
  public:
    static constexpr int kMaxSmt = 2;

    explicit ThrottleUnit(const ThrottleConfig &cfg) : cfg_(cfg) {}

    /**
     * Assert throttling for @p reason, initiated by core-local thread
     * @p initiator (the thread whose PHI triggered the transition).
     * Assertions nest per reason (counted).
     */
    void assertThrottle(ThrottleReason reason, int initiator);

    /** Release one assertion of @p reason. */
    void deassertThrottle(ThrottleReason reason);

    /** True if any reason is asserted. */
    bool throttled() const;

    /** True if @p reason is asserted. */
    bool throttledFor(ThrottleReason reason) const;

    /**
     * Execution-time multiplier for @p thread executing instructions of
     * class @p cls (>= 1.0; windowCycles when throttle applies).
     */
    double slowdownFactor(int thread, InstClass cls) const;

    /**
     * Fraction of IDQ slots not delivered for @p thread at this instant
     * (0.75 during classic throttling; used for counter accrual).
     */
    double notDeliveredFraction(int thread, InstClass cls) const;

    const ThrottleConfig &config() const { return cfg_; }

    /** Total assert events (stats/tests). */
    std::uint64_t assertCount() const { return asserts_; }

    /** Snapshot hooks (assertion counts + stats). */
    void saveState(state::SaveContext &ctx) const;
    void restoreState(state::SectionReader &r);

  private:
    ThrottleConfig cfg_;
    std::array<int, kNumThrottleReasons> counts_{};
    std::array<int, kNumThrottleReasons> initiators_{};
    std::uint64_t asserts_ = 0;

    bool appliesTo(int thread, InstClass cls) const;
};

} // namespace ich

#endif // ICH_CPU_THROTTLE_UNIT_HH
