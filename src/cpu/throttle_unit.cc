#include "cpu/throttle_unit.hh"

#include <cassert>
#include <stdexcept>

#include "state/snapshot.hh"

namespace ich
{

void
ThrottleUnit::assertThrottle(ThrottleReason reason, int initiator)
{
    int idx = static_cast<int>(reason);
    ++counts_[idx];
    initiators_[idx] = initiator;
    ++asserts_;
}

void
ThrottleUnit::deassertThrottle(ThrottleReason reason)
{
    int idx = static_cast<int>(reason);
    if (counts_[idx] <= 0)
        throw std::logic_error("ThrottleUnit: unbalanced deassert");
    --counts_[idx];
}

bool
ThrottleUnit::throttled() const
{
    for (int c : counts_)
        if (c > 0)
            return true;
    return false;
}

bool
ThrottleUnit::throttledFor(ThrottleReason reason) const
{
    return counts_[static_cast<int>(reason)] > 0;
}

bool
ThrottleUnit::appliesTo(int thread, InstClass cls) const
{
    // P-state transitions always halt the whole core: the PLL is
    // relocking, so there is no per-thread refinement to apply.
    if (counts_[static_cast<int>(ThrottleReason::kPstate)] > 0)
        return true;
    int vr = static_cast<int>(ThrottleReason::kVoltageRamp);
    if (counts_[vr] <= 0)
        return false;
    if (!cfg_.perThread)
        return true; // classic: shared IDQ interface blocks both threads
    // Improved throttling: only the initiating thread's PHI uops.
    return thread == initiators_[vr] && isPhi(cls);
}

double
ThrottleUnit::slowdownFactor(int thread, InstClass cls) const
{
    return appliesTo(thread, cls)
               ? static_cast<double>(cfg_.windowCycles)
               : 1.0;
}

double
ThrottleUnit::notDeliveredFraction(int thread, InstClass cls) const
{
    if (!appliesTo(thread, cls))
        return 0.0;
    return static_cast<double>(cfg_.windowCycles - 1) / cfg_.windowCycles;
}

void
ThrottleUnit::saveState(state::SaveContext &ctx) const
{
    for (int i = 0; i < kNumThrottleReasons; ++i) {
        ctx.w().putI32(counts_[i]);
        ctx.w().putI32(initiators_[i]);
    }
    ctx.w().putU64(asserts_);
}

void
ThrottleUnit::restoreState(state::SectionReader &r)
{
    for (int i = 0; i < kNumThrottleReasons; ++i) {
        counts_[i] = r.getI32();
        initiators_[i] = r.getI32();
    }
    asserts_ = r.getU64();
}

} // namespace ich
