/**
 * @file
 * Per-thread performance monitoring counters, mirroring the Intel PMCs the
 * paper's characterization reads (§5.6): CPU_CLK_UNHALTED,
 * IDQ_UOPS_NOT_DELIVERED, plus retired instructions.
 *
 * Counters accrue analytically over piecewise-constant-rate execution
 * segments (fractional internally; integer at the read interface).
 */

#ifndef ICH_CPU_PERF_COUNTERS_HH
#define ICH_CPU_PERF_COUNTERS_HH

#include <cstdint>

#include "state/fwd.hh"

namespace ich
{

/** Snapshot-able counter block for one hardware thread. */
class PerfCounters
{
  public:
    /** Core cycles while the thread was unhalted. */
    std::uint64_t
    clkUnhalted() const
    {
        return static_cast<std::uint64_t>(clkUnhalted_);
    }

    /** Instructions retired. */
    std::uint64_t
    instRetired() const
    {
        return static_cast<std::uint64_t>(instRetired_);
    }

    /**
     * IDQ uop slots not delivered to the back-end while the back-end was
     * not stalled. The front end is `slotsPerCycle` wide (4 on the modeled
     * cores); during throttling 3 of every 4 cycles deliver nothing.
     */
    std::uint64_t
    idqUopsNotDelivered() const
    {
        return static_cast<std::uint64_t>(idqNotDelivered_);
    }

    /** Front-end width used for normalization (Fig. 11). */
    static constexpr int slotsPerCycle = 4;

    /**
     * Normalized undelivered fraction over a counter interval, as in
     * §5.6: IDQ_UOPS_NOT_DELIVERED / (4 * CPU_CLK_UNHALTED).
     */
    static double
    normalizedNotDelivered(std::uint64_t idq_delta,
                           std::uint64_t clk_delta)
    {
        if (clk_delta == 0)
            return 0.0;
        return static_cast<double>(idq_delta) /
               (static_cast<double>(slotsPerCycle) *
                static_cast<double>(clk_delta));
    }

    /** Accrual interface (used by HwThread). */
    void
    accrue(double cycles, double insts, double idq_not_delivered)
    {
        clkUnhalted_ += cycles;
        instRetired_ += insts;
        idqNotDelivered_ += idq_not_delivered;
    }

    void
    reset()
    {
        clkUnhalted_ = instRetired_ = idqNotDelivered_ = 0.0;
    }

    /** Snapshot hooks (fractional accumulators, bit-exact). */
    void saveState(state::SaveContext &ctx) const;
    void restoreState(state::SectionReader &r);

  private:
    double clkUnhalted_ = 0.0;
    double instRetired_ = 0.0;
    double idqNotDelivered_ = 0.0;
};

} // namespace ich

#endif // ICH_CPU_PERF_COUNTERS_HH
