#include "cpu/thread.hh"

#include <cassert>
#include <cmath>

#include "cpu/core.hh"
#include "state/snapshot.hh"

namespace ich
{

namespace
{
/** Iteration-count slack absorbing floating-point rounding. */
constexpr double kIterEpsilon = 1e-6;

/**
 * Bounds on boundary-recurrence steps replayed per scheduleBoundary()
 * call. The dry run locates the step-end event exactly when it lies
 * within the window; otherwise the boundary event lands on the
 * window's last chunk boundary (a time the per-chunk event path also
 * woke at, so firing there is behavior-neutral) and the next refresh
 * replays onward. The window doubles from the min to the max while
 * replays survive untouched and collapses back on an external
 * re-anchor, so a rate change mid-loop never strands much staged work
 * while clean stretches still cut boundary events by the max factor.
 */
constexpr int kMinReplayBoundaries = 4;
constexpr int kMaxReplayBoundaries = 64;

/**
 * Next boundary-event time for a loop step, anchored at @p anchor —
 * bit-identical to the event-driven scheduleBoundary() arithmetic: the
 * target is the next chunk-record boundary (or the iteration cap if
 * closer), and the event lands one picosecond past the ceil'd analytic
 * crossing.
 */
Time
loopBoundaryWhen(Time anchor, double iters_done, double next_record,
                 const LoopStep &loop, double iter_ps)
{
    double target = static_cast<double>(loop.kernel.iterations);
    if (loop.recordEveryIterations > 0 && next_record < target)
        target = next_record;
    double remaining = std::max(0.0, target - iters_done);
    double ps = remaining * iter_ps;
    return anchor + static_cast<Time>(std::ceil(ps)) + 1;
}

} // namespace

HwThread::HwThread(Core &core, ChipApi &chip, CoreId core_id, int smt_idx)
    : core_(core), chip_(chip), coreId_(core_id), smtIdx_(smt_idx)
{
    replayCache_.reserve(kMaxReplayBoundaries);
}

void
HwThread::setProgram(Program prog)
{
    assert(!started_ || done_);
    prog_ = std::move(prog);
    stepIdx_ = 0;
    started_ = false;
    done_ = false;
    enteredStep_ = false;
    itersDone_ = 0.0;
    nextRecordIters_ = 0.0;
    replayCache_.clear();
    replayCacheHead_ = 0;
    replayDepth_ = kMinReplayBoundaries;
    records_.clear();
    // The program's record count is known up front; reserving here keeps
    // vector regrowth out of the simulation hot loop.
    std::size_t expected = 0;
    for (std::size_t i = 0; i < prog_.size(); ++i) {
        const ProgramStep &step = prog_.step(i);
        if (std::holds_alternative<MarkStep>(step)) {
            ++expected;
        } else if (const auto *loop = std::get_if<LoopStep>(&step)) {
            if (loop->recordEveryIterations > 0)
                expected += loop->kernel.iterations /
                            loop->recordEveryIterations;
        }
    }
    records_.reserve(expected);
}

void
HwThread::start()
{
    assert(!started_);
    started_ = true;
    done_ = prog_.empty();
    lastAccrue_ = chip_.eventQueue().now();
    chip_.activityChanged();
    refresh();
}

const LoopStep *
HwThread::currentLoop() const
{
    if (!started_ || done_ || stepIdx_ >= prog_.size())
        return nullptr;
    return std::get_if<LoopStep>(&prog_.step(stepIdx_));
}

bool
HwThread::activeNow() const
{
    if (!started_ || done_ || stepIdx_ >= prog_.size())
        return false;
    const ProgramStep &step = prog_.step(stepIdx_);
    return std::holds_alternative<LoopStep>(step) ||
           std::holds_alternative<WaitUntilTscStep>(step);
}

std::optional<InstClass>
HwThread::currentClass() const
{
    if (!started_ || done_ || stepIdx_ >= prog_.size())
        return std::nullopt;
    const ProgramStep &step = prog_.step(stepIdx_);
    if (const auto *loop = std::get_if<LoopStep>(&step))
        return loop->kernel.cls;
    if (std::holds_alternative<WaitUntilTscStep>(step))
        return InstClass::kScalar64; // rdtsc spin
    return std::nullopt;
}

double
HwThread::iterationPicos(const LoopStep &step) const
{
    double cycles = step.kernel.cyclesPerIteration();
    double slowdown =
        core_.throttle().slowdownFactor(smtIdx_, step.kernel.cls);
    return cycles * slowdown * cyclePicos(chip_.freqGhz());
}

void
HwThread::accrueSegment(Time t0, Time t1)
{
    if (t1 <= t0)
        return;
    const ProgramStep &step = prog_.step(stepIdx_);
    double period_ps = cyclePicos(chip_.freqGhz());
    double total_cycles = static_cast<double>(t1 - t0) / period_ps;

    if (const auto *loop = std::get_if<LoopStep>(&step)) {
        if (!enteredStep_)
            return; // not yet entered (no progress to integrate)
        // Unhalted the whole interval (stalls spin, interrupts execute).
        Time exec_start = std::max(t0, std::min(stallUntil_, t1));
        double exec_ps = static_cast<double>(t1 - exec_start);
        double iter_ps = iterationPicos(*loop);
        double new_iters = exec_ps / iter_ps;
        double cap = static_cast<double>(loop->kernel.iterations);
        double before = itersDone_;
        itersDone_ = std::min(cap, itersDone_ + new_iters);
        double delta_iters = itersDone_ - before;

        double exec_cycles = exec_ps / period_ps;
        double nd_frac = core_.throttle().notDeliveredFraction(
            smtIdx_, loop->kernel.cls);
        counters_.accrue(total_cycles,
                         delta_iters * (loop->kernel.unroll + 1),
                         PerfCounters::slotsPerCycle * exec_cycles *
                             nd_frac);
    } else if (std::holds_alternative<WaitUntilTscStep>(step)) {
        // rdtsc spin: unhalted, ~1 inst/cycle, no IDQ starvation counted
        // (the spin is trivially front-end satisfiable).
        counters_.accrue(total_cycles, total_cycles, 0.0);
    }
    // IdleStep: halted — nothing accrues.
}

void
HwThread::materializeLoop(const LoopStep &loop, Time t1)
{
    // Replay the per-chunk boundary recurrence over [lastAccrue_, t1],
    // splitting the accrual exactly where the event-driven path would
    // have woken: first at the stall end, then at every chunk-record
    // crossing. Each split re-anchors the recurrence, so timestamps,
    // iteration counts and counter values stay bit-identical to the
    // per-chunk event path — records become pure data, computed without
    // event-queue round trips.
    double cap = static_cast<double>(loop.kernel.iterations);
    if (itersDone_ + kIterEpsilon >= cap)
        return; // completion (and its side effects) is advance()'s job
    double tsc_ghz = chip_.tscGhz();
    if (stallUntil_ > lastAccrue_) {
        if (stallUntil_ > t1)
            return; // still stalled: no boundary crossed by t1
        // The stall-end wakeup's segment (no progress, unhalted cycles).
        accrueSegment(lastAccrue_, stallUntil_);
        lastAccrue_ = stallUntil_;
        emitCrossedRecords(loop, stallUntil_, tsc_ghz);
    }
    if (loop.recordEveryIterations == 0)
        return; // only boundary left is the step end — a real event

    // Rates are pinned for the whole replay (any change arrives through
    // an accrue-first invalidation hook), so the per-segment queries the
    // event path re-issued every wakeup hoist out of the loop — same
    // values, same arithmetic, ~3x cheaper per record.
    double nd_frac =
        core_.throttle().notDeliveredFraction(smtIdx_, loop.kernel.cls);
    double insts_per_iter = loop.kernel.unroll + 1;

    // Consume the boundaries scheduleBoundary()'s dry run staged —
    // iteration totals, record payloads and the next-record cursor were
    // all precomputed there with the identical arithmetic, so consuming
    // one is counter accrual plus data movement.
    //
    // The staged cache IS the authoritative boundary schedule: it was
    // derived under the anchor and rates of the last refresh, exactly
    // like the event the per-chunk path would have left pending. A
    // crossing must never be recomputed here at accrue-time rates — if
    // a rate changed since the last refresh (e.g. the frequency flip
    // between beforeFreqChange() and the deassert refresh), the event
    // path would still be sleeping until its *old* boundary time, with
    // any overshot record emitted later by advance() at the wakeup
    // timestamp. Every re-anchor (stall, throttle flip, tail accrual)
    // triggers a refresh that restages before simulated time advances,
    // so crossings beyond a broken anchor chain do not exist yet by
    // construction.
    while (replayCacheHead_ < replayCache_.size()) {
        const PendingBoundary &e = replayCache_[replayCacheHead_];
        if (e.anchor != lastAccrue_ || e.when > t1)
            break;
        double before = itersDone_;
        itersDone_ = e.itersAfter;
        counters_.accrue(e.cycles,
                         (itersDone_ - before) * insts_per_iter,
                         PerfCounters::slotsPerCycle * e.cycles *
                             nd_frac);
        lastAccrue_ = e.when;
        ++replayCacheHead_;
        if (e.recCount == 1) {
            records_.push_back(e.rec);
            nextRecordIters_ = e.nextRecAfter;
        } else if (e.recCount > 1) {
            // Epsilon-rare multi-crossing: rebuild via the general loop
            // (leaves nextRecordIters_ == e.nextRecAfter by identity).
            emitCrossedRecords(loop, e.when, tsc_ghz);
        }
        if (itersDone_ + kIterEpsilon >= cap)
            return;
    }
}

void
HwThread::accrue()
{
    Time now = chip_.eventQueue().now();
    if (now <= lastAccrue_)
        return;
    if (!started_ || done_ || stepIdx_ >= prog_.size()) {
        lastAccrue_ = now;
        return;
    }
    if (!legacyChunkEvents_ && enteredStep_) {
        if (const auto *loop = std::get_if<LoopStep>(&prog_.step(stepIdx_)))
            materializeLoop(*loop, now);
    }
    accrueSegment(lastAccrue_, now);
    lastAccrue_ = now;
}

void
HwThread::materializePending()
{
    if (legacyChunkEvents_ || !started_ || done_ ||
        stepIdx_ >= prog_.size() || !enteredStep_)
        return;
    if (const auto *loop = std::get_if<LoopStep>(&prog_.step(stepIdx_)))
        materializeLoop(*loop, chip_.eventQueue().now());
}

const std::vector<Record> &
HwThread::records() const
{
    // Logically const: materialization only renders state the per-chunk
    // event path would already have made observable by now.
    const_cast<HwThread *>(this)->materializePending();
    return records_;
}

PerfCounters &
HwThread::counters()
{
    materializePending();
    return counters_;
}

const PerfCounters &
HwThread::counters() const
{
    const_cast<HwThread *>(this)->materializePending();
    return counters_;
}

double
HwThread::loopIterationsDone() const
{
    const_cast<HwThread *>(this)->materializePending();
    return itersDone_;
}

void
HwThread::emitRecord(int tag, std::uint64_t iters_done)
{
    emitRecordAt(tag, iters_done, chip_.eventQueue().now());
}

void
HwThread::emitRecordAt(int tag, std::uint64_t iters_done, Time at)
{
    Record rec;
    rec.tag = tag;
    rec.tsc = chip_.tscAt(at);
    rec.time = at;
    rec.iterationsDone = iters_done;
    records_.push_back(rec);
}

void
HwThread::emitCrossedRecords(const LoopStep &loop, Time at,
                             double tsc_ghz)
{
    while (loop.recordEveryIterations > 0 &&
           nextRecordIters_ <= itersDone_ + kIterEpsilon &&
           nextRecordIters_ <=
               static_cast<double>(loop.kernel.iterations)) {
        Record rec;
        rec.tag = loop.tag;
        // Inline tscAt(at) with the rate hoisted by the caller.
        rec.tsc = static_cast<Cycles>(
            std::llround(static_cast<double>(at) * tsc_ghz / 1000.0));
        rec.time = at;
        rec.iterationsDone =
            static_cast<std::uint64_t>(std::llround(nextRecordIters_));
        records_.push_back(rec);
        nextRecordIters_ +=
            static_cast<double>(loop.recordEveryIterations);
    }
}

void
HwThread::enterStep()
{
    assert(!enteredStep_);
    enteredStep_ = true;
    const ProgramStep &step = prog_.step(stepIdx_);
    Time now = chip_.eventQueue().now();

    if (const auto *loop = std::get_if<LoopStep>(&step)) {
        itersDone_ = 0.0;
        nextRecordIters_ =
            loop->recordEveryIterations > 0
                ? static_cast<double>(loop->recordEveryIterations)
                : 0.0;
        if (traits(loop->kernel.cls).usesAvxUnit) {
            // Pinned for the whole kernel: the idle-close countdown must
            // run from the kernel's end, not its first instruction.
            Time wake = core_.avxGate().beginUse();
            if (wake > 0)
                stallUntil_ = std::max(stallUntil_, now + wake);
        }
        chip_.phiStarted(coreId_, smtIdx_, loop->kernel.cls);
        chip_.activityChanged();
    } else if (const auto *idle = std::get_if<IdleStep>(&step)) {
        idleEnd_ = now + idle->duration;
        chip_.activityChanged();
    } else if (std::holds_alternative<WaitUntilTscStep>(step)) {
        chip_.activityChanged();
    }
}

void
HwThread::finishLoopStep(const LoopStep &step)
{
    if (traits(step.kernel.cls).usesAvxUnit)
        core_.avxGate().endUse();
    chip_.kernelEnded(coreId_, smtIdx_, step.kernel.cls);
}

void
HwThread::advance()
{
    Time now = chip_.eventQueue().now();
    while (started_ && !done_) {
        if (stepIdx_ >= prog_.size()) {
            done_ = true;
            chip_.activityChanged();
            break;
        }
        if (!enteredStep_)
            enterStep();

        const ProgramStep &step = prog_.step(stepIdx_);
        bool completed = false;

        if (const auto *loop = std::get_if<LoopStep>(&step)) {
            // Emit any chunk records whose boundary has been crossed (a
            // no-op on the analytic path, which emitted them during
            // materialization).
            emitCrossedRecords(*loop, now, chip_.tscGhz());
            if (itersDone_ + kIterEpsilon >=
                static_cast<double>(loop->kernel.iterations)) {
                finishLoopStep(*loop);
                completed = true;
            }
        } else if (const auto *wait =
                       std::get_if<WaitUntilTscStep>(&step)) {
            completed = now >= chip_.tscToTime(wait->tsc);
        } else if (std::get_if<IdleStep>(&step)) {
            completed = now >= idleEnd_;
        } else if (const auto *mark = std::get_if<MarkStep>(&step)) {
            emitRecord(mark->tag, 0);
            completed = true;
        } else if (const auto *call = std::get_if<CallStep>(&step)) {
            if (call->fn)
                call->fn();
            completed = true;
        }

        if (!completed)
            break;
        ++stepIdx_;
        enteredStep_ = false;
        chip_.activityChanged();
    }
}

Time
HwThread::dryRunLoopBoundary(const LoopStep &loop, Time anchor)
{
    // Replay the boundary recurrence forward (the same arithmetic the
    // materializer will perform, minus counters and record emission) to
    // find the next event the thread actually needs: the step end, or
    // the kMaxReplayBoundaries'th chunk boundary, whichever is sooner.
    // Every crossing visited is cached so the materializer consumes it
    // instead of recomputing the recurrence.
    // Adapt the replay depth to the invalidation rate: a cache that was
    // consumed whole (the clean, batching-friendly case) doubles the
    // next window toward the cap; one stranded by an external re-anchor
    // (stalls, throttle flips) shrinks it, so noisy phases never stage
    // much work that a re-anchor would discard. An empty cache (first
    // boundary of a step) keeps the current window.
    if (!replayCache_.empty()) {
        if (replayCacheHead_ >= replayCache_.size())
            replayDepth_ =
                std::min(replayDepth_ * 2, kMaxReplayBoundaries);
        else
            replayDepth_ = kMinReplayBoundaries;
    }
    replayCache_.clear();
    replayCacheHead_ = 0;

    double iter_ps = iterationPicos(loop);
    double period_ps = cyclePicos(chip_.freqGhz());
    double cap = static_cast<double>(loop.kernel.iterations);
    bool chunked = loop.recordEveryIterations > 0;
    double rec_every = static_cast<double>(loop.recordEveryIterations);
    double tsc_ghz = chip_.tscGhz();
    double iters = itersDone_;
    double next_rec = nextRecordIters_;
    Time a = anchor;
    Time w = a;
    for (int k = 0; k < replayDepth_; ++k) {
        // loopBoundaryWhen() with the conversions hoisted.
        double target = cap;
        if (chunked && next_rec < target)
            target = next_rec;
        double remaining = std::max(0.0, target - iters);
        w = a + static_cast<Time>(std::ceil(remaining * iter_ps)) + 1;
        double exec_ps = static_cast<double>(w - a);
        iters = std::min(cap, iters + exec_ps / iter_ps);
        PendingBoundary e;
        e.anchor = a;
        e.when = w;
        e.itersAfter = iters;
        e.cycles = exec_ps / period_ps;
        e.recCount = 0;
        // Stage the crossed records (emitCrossedRecords(), precomputed).
        while (chunked && next_rec <= iters + kIterEpsilon &&
               next_rec <= cap) {
            if (e.recCount == 0) {
                e.rec.tag = loop.tag;
                e.rec.tsc = static_cast<Cycles>(std::llround(
                    static_cast<double>(w) * tsc_ghz / 1000.0));
                e.rec.time = w;
                e.rec.iterationsDone =
                    static_cast<std::uint64_t>(std::llround(next_rec));
            }
            next_rec += rec_every;
            ++e.recCount;
        }
        e.nextRecAfter = next_rec;
        replayCache_.push_back(e);
        if (iters + kIterEpsilon >= cap)
            break; // w is the completion event
        a = w;
    }
    return w;
}

Time
HwThread::nextBoundaryTime()
{
    Time now = chip_.eventQueue().now();
    const ProgramStep &step = prog_.step(stepIdx_);

    if (stallUntil_ > now)
        return stallUntil_;
    if (const auto *loop = std::get_if<LoopStep>(&step)) {
        if (!legacyChunkEvents_ && loop->recordEveryIterations > 0)
            return dryRunLoopBoundary(*loop, now);
        // Per-chunk baseline (wake at every record boundary), and
        // unchunked loops (one boundary at the step end in both modes —
        // nothing to stage; same arithmetic either way).
        return loopBoundaryWhen(now, itersDone_, nextRecordIters_, *loop,
                                iterationPicos(*loop));
    }
    if (const auto *wait = std::get_if<WaitUntilTscStep>(&step))
        return std::max(now + 1, chip_.tscToTime(wait->tsc));
    if (std::get_if<IdleStep>(&step))
        return std::max(now + 1, idleEnd_);
    return now + 1; // mark/call resolve immediately on next refresh
}

void
HwThread::scheduleBoundary()
{
    auto &eq = chip_.eventQueue();
    if (!started_ || done_ || stepIdx_ >= prog_.size()) {
        if (boundaryEvent_ != EventQueue::kInvalidEvent) {
            eq.deschedule(boundaryEvent_);
            boundaryEvent_ = EventQueue::kInvalidEvent;
        }
        return;
    }

    Time when = nextBoundaryTime();
    if (legacyChunkEvents_ &&
        boundaryEvent_ != EventQueue::kInvalidEvent) {
        // Faithful pre-batching baseline: a deschedule+schedule pair per
        // refresh, exactly what the per-chunk path always paid.
        eq.deschedule(boundaryEvent_);
        boundaryEvent_ = EventQueue::kInvalidEvent;
    }
    // One boundary event per thread, retargeted in place on refresh; a
    // fresh schedule only when there is no live event to move (first
    // boundary of a program, or a refresh from inside the boundary
    // event's own dispatch). Checked so the capture can never silently
    // outgrow the callback's inline buffer.
    if (boundaryEvent_ != EventQueue::kInvalidEvent &&
        eq.reschedule(boundaryEvent_, when))
        return;
    boundaryEvent_ = eq.scheduleChecked(when, [this] {
        boundaryEvent_ = EventQueue::kInvalidEvent;
        refresh();
    });
}

void
HwThread::refresh()
{
    if (inRefresh_) {
        pendingRefresh_ = true;
        return;
    }
    inRefresh_ = true;
    do {
        pendingRefresh_ = false;
        accrue();
        advance();
    } while (pendingRefresh_);
    scheduleBoundary();
    inRefresh_ = false;
}

void
HwThread::saveState(state::SaveContext &ctx) const
{
    if (started_ && !done_)
        throw state::ArchiveError(
            "HwThread: snapshot while a program is executing (core " +
            std::to_string(coreId_) + " smt " + std::to_string(smtIdx_) +
            ") — quiesce first");
    // An idle thread has no deferred chunk records by construction (the
    // completion event materialized them); the quiesce contract for the
    // analytic path is exactly the existing idle requirement.
    state::ArchiveWriter &w = ctx.w();
    w.putBool(started_);
    w.putBool(done_);
    w.putU64(lastAccrue_);
    w.putU64(stallUntil_);
    counters_.saveState(ctx);
    w.putU64(records_.size());
    for (const Record &rec : records_) {
        w.putI32(rec.tag);
        w.putU64(rec.tsc);
        w.putU64(rec.time);
        w.putU64(rec.iterationsDone);
    }
}

void
HwThread::restoreState(state::SectionReader &r, state::RestoreContext &)
{
    started_ = r.getBool();
    done_ = r.getBool();
    lastAccrue_ = r.getU64();
    stallUntil_ = r.getU64();
    counters_.restoreState(r);
    records_.clear();
    std::uint64_t n = r.getU64();
    records_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        Record rec;
        rec.tag = r.getI32();
        rec.tsc = r.getU64();
        rec.time = r.getU64();
        rec.iterationsDone = r.getU64();
        records_.push_back(rec);
    }
    // The saved thread was idle, so it owned no boundary event and the
    // fresh object's defaults (empty program, step 0) already match.
}

void
HwThread::stallFor(Time duration)
{
    accrue();
    Time now = chip_.eventQueue().now();
    stallUntil_ = std::max(stallUntil_, now + duration);
    refresh();
}

} // namespace ich
