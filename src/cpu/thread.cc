#include "cpu/thread.hh"

#include <cassert>
#include <cmath>

#include "cpu/core.hh"
#include "state/snapshot.hh"

namespace ich
{

namespace
{
/** Iteration-count slack absorbing floating-point rounding. */
constexpr double kIterEpsilon = 1e-6;
} // namespace

HwThread::HwThread(Core &core, ChipApi &chip, CoreId core_id, int smt_idx)
    : core_(core), chip_(chip), coreId_(core_id), smtIdx_(smt_idx)
{
}

void
HwThread::setProgram(Program prog)
{
    assert(!started_ || done_);
    prog_ = std::move(prog);
    stepIdx_ = 0;
    started_ = false;
    done_ = false;
    enteredStep_ = false;
    itersDone_ = 0.0;
    nextRecordIters_ = 0.0;
    records_.clear();
}

void
HwThread::start()
{
    assert(!started_);
    started_ = true;
    done_ = prog_.empty();
    lastAccrue_ = chip_.eventQueue().now();
    chip_.activityChanged();
    refresh();
}

const LoopStep *
HwThread::currentLoop() const
{
    if (!started_ || done_ || stepIdx_ >= prog_.size())
        return nullptr;
    return std::get_if<LoopStep>(&prog_.step(stepIdx_));
}

bool
HwThread::activeNow() const
{
    if (!started_ || done_ || stepIdx_ >= prog_.size())
        return false;
    const ProgramStep &step = prog_.step(stepIdx_);
    return std::holds_alternative<LoopStep>(step) ||
           std::holds_alternative<WaitUntilTscStep>(step);
}

std::optional<InstClass>
HwThread::currentClass() const
{
    if (!started_ || done_ || stepIdx_ >= prog_.size())
        return std::nullopt;
    const ProgramStep &step = prog_.step(stepIdx_);
    if (const auto *loop = std::get_if<LoopStep>(&step))
        return loop->kernel.cls;
    if (std::holds_alternative<WaitUntilTscStep>(step))
        return InstClass::kScalar64; // rdtsc spin
    return std::nullopt;
}

double
HwThread::iterationPicos(const LoopStep &step) const
{
    double cycles = step.kernel.cyclesPerIteration();
    double slowdown =
        core_.throttle().slowdownFactor(smtIdx_, step.kernel.cls);
    return cycles * slowdown * cyclePicos(chip_.freqGhz());
}

void
HwThread::accrue()
{
    Time now = chip_.eventQueue().now();
    if (now <= lastAccrue_)
        return;
    Time t0 = lastAccrue_;
    Time t1 = now;
    lastAccrue_ = now;
    if (!started_ || done_ || stepIdx_ >= prog_.size())
        return;

    const ProgramStep &step = prog_.step(stepIdx_);
    double period_ps = cyclePicos(chip_.freqGhz());
    double total_cycles = static_cast<double>(t1 - t0) / period_ps;

    if (const auto *loop = std::get_if<LoopStep>(&step)) {
        if (!enteredStep_)
            return; // not yet entered (no progress to integrate)
        // Unhalted the whole interval (stalls spin, interrupts execute).
        Time exec_start = std::max(t0, std::min(stallUntil_, t1));
        double exec_ps = static_cast<double>(t1 - exec_start);
        double iter_ps = iterationPicos(*loop);
        double new_iters = exec_ps / iter_ps;
        double cap = static_cast<double>(loop->kernel.iterations);
        double before = itersDone_;
        itersDone_ = std::min(cap, itersDone_ + new_iters);
        double delta_iters = itersDone_ - before;

        double exec_cycles = exec_ps / period_ps;
        double nd_frac = core_.throttle().notDeliveredFraction(
            smtIdx_, loop->kernel.cls);
        counters_.accrue(total_cycles,
                         delta_iters * (loop->kernel.unroll + 1),
                         PerfCounters::slotsPerCycle * exec_cycles *
                             nd_frac);
    } else if (std::holds_alternative<WaitUntilTscStep>(step)) {
        // rdtsc spin: unhalted, ~1 inst/cycle, no IDQ starvation counted
        // (the spin is trivially front-end satisfiable).
        counters_.accrue(total_cycles, total_cycles, 0.0);
    }
    // IdleStep: halted — nothing accrues.
}

void
HwThread::emitRecord(int tag, std::uint64_t iters_done)
{
    Record rec;
    rec.tag = tag;
    rec.tsc = chip_.tscNow();
    rec.time = chip_.eventQueue().now();
    rec.iterationsDone = iters_done;
    records_.push_back(rec);
}

void
HwThread::enterStep()
{
    assert(!enteredStep_);
    enteredStep_ = true;
    const ProgramStep &step = prog_.step(stepIdx_);
    Time now = chip_.eventQueue().now();

    if (const auto *loop = std::get_if<LoopStep>(&step)) {
        itersDone_ = 0.0;
        nextRecordIters_ =
            loop->recordEveryIterations > 0
                ? static_cast<double>(loop->recordEveryIterations)
                : 0.0;
        if (traits(loop->kernel.cls).usesAvxUnit) {
            // Pinned for the whole kernel: the idle-close countdown must
            // run from the kernel's end, not its first instruction.
            Time wake = core_.avxGate().beginUse();
            if (wake > 0)
                stallUntil_ = std::max(stallUntil_, now + wake);
        }
        chip_.phiStarted(coreId_, smtIdx_, loop->kernel.cls);
        chip_.activityChanged();
    } else if (const auto *idle = std::get_if<IdleStep>(&step)) {
        idleEnd_ = now + idle->duration;
        chip_.activityChanged();
    } else if (std::holds_alternative<WaitUntilTscStep>(step)) {
        chip_.activityChanged();
    }
}

void
HwThread::finishLoopStep(const LoopStep &step)
{
    if (traits(step.kernel.cls).usesAvxUnit)
        core_.avxGate().endUse();
    chip_.kernelEnded(coreId_, smtIdx_, step.kernel.cls);
}

void
HwThread::advance()
{
    Time now = chip_.eventQueue().now();
    while (started_ && !done_) {
        if (stepIdx_ >= prog_.size()) {
            done_ = true;
            chip_.activityChanged();
            break;
        }
        if (!enteredStep_)
            enterStep();

        const ProgramStep &step = prog_.step(stepIdx_);
        bool completed = false;

        if (const auto *loop = std::get_if<LoopStep>(&step)) {
            // Emit any chunk records whose boundary has been crossed.
            while (loop->recordEveryIterations > 0 &&
                   nextRecordIters_ <=
                       itersDone_ + kIterEpsilon &&
                   nextRecordIters_ <=
                       static_cast<double>(loop->kernel.iterations)) {
                emitRecord(loop->tag,
                           static_cast<std::uint64_t>(
                               std::llround(nextRecordIters_)));
                nextRecordIters_ +=
                    static_cast<double>(loop->recordEveryIterations);
            }
            if (itersDone_ + kIterEpsilon >=
                static_cast<double>(loop->kernel.iterations)) {
                finishLoopStep(*loop);
                completed = true;
            }
        } else if (const auto *wait =
                       std::get_if<WaitUntilTscStep>(&step)) {
            completed = now >= chip_.tscToTime(wait->tsc);
        } else if (std::get_if<IdleStep>(&step)) {
            completed = now >= idleEnd_;
        } else if (const auto *mark = std::get_if<MarkStep>(&step)) {
            emitRecord(mark->tag, 0);
            completed = true;
        } else if (const auto *call = std::get_if<CallStep>(&step)) {
            if (call->fn)
                call->fn();
            completed = true;
        }

        if (!completed)
            break;
        ++stepIdx_;
        enteredStep_ = false;
        chip_.activityChanged();
    }
}

void
HwThread::scheduleBoundary()
{
    auto &eq = chip_.eventQueue();
    ++generation_;
    if (boundaryEvent_ != EventQueue::kInvalidEvent) {
        eq.deschedule(boundaryEvent_);
        boundaryEvent_ = EventQueue::kInvalidEvent;
    }
    if (!started_ || done_ || stepIdx_ >= prog_.size())
        return;

    Time now = eq.now();
    Time when = 0;
    const ProgramStep &step = prog_.step(stepIdx_);

    if (stallUntil_ > now) {
        when = stallUntil_;
    } else if (const auto *loop = std::get_if<LoopStep>(&step)) {
        double target = static_cast<double>(loop->kernel.iterations);
        if (loop->recordEveryIterations > 0 &&
            nextRecordIters_ < target)
            target = nextRecordIters_;
        double remaining = std::max(0.0, target - itersDone_);
        double ps = remaining * iterationPicos(*loop);
        when = now + static_cast<Time>(std::ceil(ps)) + 1;
    } else if (const auto *wait = std::get_if<WaitUntilTscStep>(&step)) {
        when = std::max(now + 1, chip_.tscToTime(wait->tsc));
    } else if (std::get_if<IdleStep>(&step)) {
        when = std::max(now + 1, idleEnd_);
    } else {
        when = now + 1; // mark/call resolve immediately on next refresh
    }

    // One boundary event per program step — checked so the capture can
    // never silently outgrow the callback's inline buffer.
    std::uint64_t gen = generation_;
    boundaryEvent_ = eq.scheduleChecked(when, [this, gen] {
        if (gen == generation_) {
            boundaryEvent_ = EventQueue::kInvalidEvent;
            refresh();
        }
    });
}

void
HwThread::refresh()
{
    if (inRefresh_) {
        pendingRefresh_ = true;
        return;
    }
    inRefresh_ = true;
    do {
        pendingRefresh_ = false;
        accrue();
        advance();
    } while (pendingRefresh_);
    scheduleBoundary();
    inRefresh_ = false;
}

void
HwThread::saveState(state::SaveContext &ctx) const
{
    if (started_ && !done_)
        throw state::ArchiveError(
            "HwThread: snapshot while a program is executing (core " +
            std::to_string(coreId_) + " smt " + std::to_string(smtIdx_) +
            ") — quiesce first");
    state::ArchiveWriter &w = ctx.w();
    w.putBool(started_);
    w.putBool(done_);
    w.putU64(lastAccrue_);
    w.putU64(stallUntil_);
    counters_.saveState(ctx);
    w.putU64(records_.size());
    for (const Record &rec : records_) {
        w.putI32(rec.tag);
        w.putU64(rec.tsc);
        w.putU64(rec.time);
        w.putU64(rec.iterationsDone);
    }
}

void
HwThread::restoreState(state::SectionReader &r, state::RestoreContext &)
{
    started_ = r.getBool();
    done_ = r.getBool();
    lastAccrue_ = r.getU64();
    stallUntil_ = r.getU64();
    counters_.restoreState(r);
    records_.clear();
    std::uint64_t n = r.getU64();
    records_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        Record rec;
        rec.tag = r.getI32();
        rec.tsc = r.getU64();
        rec.time = r.getU64();
        rec.iterationsDone = r.getU64();
        records_.push_back(rec);
    }
    // The saved thread was idle, so it owned no boundary event and the
    // fresh object's defaults (empty program, step 0) already match.
}

void
HwThread::stallFor(Time duration)
{
    accrue();
    Time now = chip_.eventQueue().now();
    stallUntil_ = std::max(stallUntil_, now + duration);
    refresh();
}

} // namespace ich
