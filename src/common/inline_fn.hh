/**
 * @file
 * InlineFn: a move-only callable wrapper with small-buffer storage.
 *
 * std::function heap-allocates once the capture exceeds the
 * implementation's tiny SBO window (16 bytes on libstdc++), which makes
 * every scheduled simulator event cost a malloc/free pair. InlineFn
 * reserves a configurable inline buffer (default 48 bytes — enough for
 * every capture the PMU/PDN/channel layers actually use, typically
 * `[this]` plus a couple of scalars) and only falls back to the heap for
 * oversized or throwing-move callables. Hot-path call sites use
 * `EventQueue::scheduleChecked()`, which static_asserts
 * `InlineFn::fits<F>()` so an accidentally fattened capture is a compile
 * error, not a silent perf regression.
 */

#ifndef ICH_COMMON_INLINE_FN_HH
#define ICH_COMMON_INLINE_FN_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ich
{

template <class Sig, std::size_t InlineBytes = 48>
class InlineFn; // only the R(Args...) specialization exists

template <class R, class... Args, std::size_t InlineBytes>
class InlineFn<R(Args...), InlineBytes>
{
  public:
    /** True when a D-typed callable lives in the inline buffer (no
     *  allocation). Requires nothrow move so InlineFn's move stays
     *  noexcept. */
    template <class F>
    static constexpr bool
    fits()
    {
        using D = std::decay_t<F>;
        return sizeof(D) <= InlineBytes &&
               alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible<D>::value;
    }

    static constexpr std::size_t
    inlineCapacity()
    {
        return InlineBytes;
    }

    InlineFn() noexcept = default;
    InlineFn(std::nullptr_t) noexcept {}

    template <class F, class D = std::decay_t<F>,
              class = std::enable_if_t<
                  !std::is_same<D, InlineFn>::value &&
                  std::is_invocable_r<R, D &, Args...>::value>>
    InlineFn(F &&f)
    {
        emplace<D>(std::forward<F>(f));
    }

    InlineFn(InlineFn &&other) noexcept { moveFrom(other); }

    InlineFn &
    operator=(InlineFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineFn(const InlineFn &) = delete;
    InlineFn &operator=(const InlineFn &) = delete;

    ~InlineFn() { reset(); }

    explicit operator bool() const noexcept { return invoke_ != nullptr; }

    /** True when the held callable lives in the inline buffer. */
    bool
    isInline() const noexcept
    {
        return invoke_ != nullptr && heap_ == nullptr;
    }

    R
    operator()(Args... args)
    {
        return invoke_(obj(), std::forward<Args>(args)...);
    }

    void
    reset() noexcept
    {
        if (!invoke_)
            return;
        manage_(obj(), nullptr, heap_ ? Op::kDestroyHeap : Op::kDestroyInline);
        invoke_ = nullptr;
        manage_ = nullptr;
        heap_ = nullptr;
    }

  private:
    enum class Op { kDestroyInline, kDestroyHeap, kMoveTo };

    using Invoke = R (*)(void *, Args &&...);
    using Manage = void (*)(void *src, void *dst, Op op);

    template <class D, class F>
    void
    emplace(F &&f)
    {
        if constexpr (fits<D>()) {
            ::new (static_cast<void *>(buf_)) D(std::forward<F>(f));
        } else {
            heap_ = new D(std::forward<F>(f));
        }
        invoke_ = [](void *o, Args &&...args) -> R {
            return (*static_cast<D *>(o))(std::forward<Args>(args)...);
        };
        manage_ = [](void *src, void *dst, Op op) {
            D *s = static_cast<D *>(src);
            switch (op) {
            case Op::kDestroyInline:
                s->~D();
                break;
            case Op::kDestroyHeap:
                delete s;
                break;
            case Op::kMoveTo:
                ::new (dst) D(std::move(*s));
                s->~D();
                break;
            }
        };
    }

    void
    moveFrom(InlineFn &other) noexcept
    {
        invoke_ = other.invoke_;
        manage_ = other.manage_;
        heap_ = other.heap_;
        if (invoke_ && !heap_)
            manage_(other.buf_, buf_, Op::kMoveTo);
        other.invoke_ = nullptr;
        other.manage_ = nullptr;
        other.heap_ = nullptr;
    }

    void *
    obj() noexcept
    {
        return heap_ ? heap_ : static_cast<void *>(buf_);
    }

    alignas(std::max_align_t) unsigned char buf_[InlineBytes];
    void *heap_ = nullptr; ///< non-null: callable is heap-allocated
    Invoke invoke_ = nullptr;
    Manage manage_ = nullptr;
};

} // namespace ich

#endif // ICH_COMMON_INLINE_FN_HH
