#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace ich
{

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    if (header_.empty())
        throw std::invalid_argument("Table: empty header");
}

void
Table::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size())
        throw std::invalid_argument("Table: row width mismatch");
    rows_.push_back(std::move(row));
}

std::string
Table::fmt(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
Table::toString() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << row[c];
        }
        os << "\n";
    };
    emit(header_);
    std::string rule;
    for (std::size_t c = 0; c < header_.size(); ++c)
        rule += std::string(widths[c], '-') + "  ";
    os << rule << "\n";
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
Table::toCsv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << row[c];
        }
        os << "\n";
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

} // namespace ich
