#include "common/ticker.hh"

#include <stdexcept>
#include <string>

#include "state/snapshot.hh"

namespace ich
{

Ticker::~Ticker()
{
    // Pending group events capture raw Group pointers; never leave one
    // behind in an EventQueue that may keep running.
    for (auto &g : groups_)
        if (g->event != EventQueue::kInvalidEvent)
            eq_.deschedule(g->event);
}

Time
Ticker::firstDueAfter(const TickRate &rate, Time now)
{
    if (rate.phase > now)
        return rate.phase;
    // Smallest phase + k*period strictly after now.
    Time elapsed = now - rate.phase;
    return rate.phase + (elapsed / rate.period + 1) * rate.period;
}

Ticker::Group &
Ticker::groupFor(TickRate rate)
{
    for (auto &g : groups_)
        if (g->rate == rate)
            return *g;
    groups_.push_back(std::make_unique<Group>());
    groups_.back()->rate = rate;
    return *groups_.back();
}

void
Ticker::add(Clocked &c, TickRate rate, Ownership own)
{
    if (rate.period == 0)
        throw std::invalid_argument("Ticker: zero tick period");
    Group &g = groupFor(rate);
    bool was_idle = g.event == EventQueue::kInvalidEvent;
    g.members.push_back(Member{&c, own, firstDueAfter(rate, eq_.now())});
    // An idle group arms on its first member; while the group is
    // dispatching, fireGroup() re-arms after the pass instead.
    if (was_idle && !g.dispatching) {
        g.nextDue = firstDueAfter(rate, eq_.now());
        armGroup(g);
    }
}

void
Ticker::remove(Clocked &c)
{
    for (auto &gp : groups_) {
        Group &g = *gp;
        for (std::size_t i = 0; i < g.members.size(); ++i) {
            if (g.members[i].clocked != &c)
                continue;
            if (g.dispatching) {
                g.members[i].clocked = nullptr; // skipped for this pass
                g.hasHoles = true;
            } else {
                g.members.erase(g.members.begin() +
                                static_cast<std::ptrdiff_t>(i));
                if (g.members.empty()) {
                    if (g.event != EventQueue::kInvalidEvent)
                        eq_.deschedule(g.event);
                    // Drop the group: lingering empty groups would
                    // desync the save/restore group-count match.
                    pruneGroup(&g);
                }
            }
            return;
        }
    }
}

bool
Ticker::contains(const Clocked &c) const
{
    for (const auto &g : groups_)
        for (const Member &m : g->members)
            if (m.clocked == &c)
                return true;
    return false;
}

std::size_t
Ticker::memberCount() const
{
    std::size_t n = 0;
    for (const auto &g : groups_)
        for (const Member &m : g->members)
            if (m.clocked != nullptr)
                ++n;
    return n;
}

void
Ticker::armGroup(Group &g)
{
    Group *gp = &g;
    g.event = eq_.scheduleChecked(
        g.nextDue, [this, gp] { fireGroup(*gp); }, g.rate.priority);
    pumpIndexDirty_ = true;
}

void
Ticker::fireGroup(Group &g)
{
    g.event = EventQueue::kInvalidEvent;
    g.dispatching = true;
    Time now = eq_.now();
    // Fixed bound: members added during the pass tick next period.
    const std::size_t count = g.members.size();
    for (std::size_t i = 0; i < count; ++i) {
        const Member &m = g.members[i];
        if (m.clocked != nullptr && now >= m.minDue) {
            ++ticks_;
            m.clocked->tick(now);
        }
    }
    g.dispatching = false;
    if (g.hasHoles) {
        g.hasHoles = false;
        std::size_t w = 0;
        for (std::size_t i = 0; i < g.members.size(); ++i)
            if (g.members[i].clocked != nullptr)
                g.members[w++] = g.members[i];
        g.members.resize(w);
    }
    if (g.members.empty()) {
        pruneGroup(&g); // frees g — must be the last use
        return;
    }
    g.nextDue += g.rate.period;
    armGroup(g);
}

void
Ticker::fireGroupInline(Group &g)
{
    // Mirror of fireGroup() for the fast-forward pump: the group's
    // event is still in the heap (never popped), so g.event stays
    // valid through the pass. add() during the pass then sees the
    // group as armed and skips arming — the same outcome fireGroup()'s
    // dispatching guard produces — and the new member still first
    // ticks on the next period via its minDue.
    g.dispatching = true;
    Time now = eq_.now();
    // Fixed bound: members added during the pass tick next period.
    const std::size_t count = g.members.size();
    for (std::size_t i = 0; i < count; ++i) {
        const Member &m = g.members[i];
        if (m.clocked != nullptr && now >= m.minDue) {
            ++ticks_;
            m.clocked->tick(now);
        }
    }
    g.dispatching = false;
    if (g.hasHoles) {
        g.hasHoles = false;
        std::size_t w = 0;
        for (std::size_t i = 0; i < g.members.size(); ++i)
            if (g.members[i].clocked != nullptr)
                g.members[w++] = g.members[i];
        g.members.resize(w);
    }
    if (g.members.empty()) {
        // The popped path had already consumed the event; here it is
        // still pending and must be cancelled explicitly.
        eq_.deschedule(g.event);
        pruneGroup(&g); // frees g — must be the last use
        return;
    }
    g.nextDue += g.rate.period;
    // Retarget the pending event in place. reschedule() assigns a
    // fresh insertion sequence *after* member dispatch — exactly the
    // sequence armGroup()'s schedule() would have burned — so the
    // (time, priority, seq) ordering of everything members scheduled
    // is identical to the stepped path.
    if (!eq_.reschedule(g.event, g.nextDue))
        armGroup(g);
}

std::uint64_t
Ticker::fastForward(Time until)
{
    std::uint64_t fires = 0;
    for (;;) {
        Time when;
        EventId head;
        if (!eq_.peekNext(when, head) || when > until)
            break;
        // Re-check per iteration: an inline fire that empties or
        // re-arms a group (reschedule to a past slot, transient churn)
        // invalidates the index mid-span.
        if (pumpIndexDirty_) {
            pumpIndex_.assign(pumpIndex_.size(), nullptr);
            for (auto &gp : groups_) {
                if (gp->event == EventQueue::kInvalidEvent)
                    continue;
                std::uint32_t s = EventQueue::slotIndex(gp->event);
                if (s >= pumpIndex_.size())
                    pumpIndex_.resize(s + 1, nullptr);
                pumpIndex_[s] = gp.get();
            }
            pumpIndexDirty_ = false;
        }
        std::uint32_t slot = EventQueue::slotIndex(head);
        Group *g =
            slot < pumpIndex_.size() ? pumpIndex_[slot] : nullptr;
        // The handle check makes the hit authoritative: ids are
        // generation-tagged, so only the group that owns this pending
        // event can match. Anything else means a non-tick event holds
        // the head and the skip is suppressed.
        if (g == nullptr || g->event != head)
            break;
        // Advance the clock and credit the fire before dispatch,
        // matching runOne()'s now_/executed_ updates.
        eq_.creditInlineEvent(when);
        fireGroupInline(*g);
        ++fires;
    }
    ffFires_ += fires;
    return fires;
}

Time
Ticker::nextGroupDue() const
{
    Time best = ~Time{0};
    for (const auto &g : groups_)
        if (g->event != EventQueue::kInvalidEvent && g->nextDue < best)
            best = g->nextDue;
    return best;
}

void
Ticker::pruneGroup(Group *g)
{
    pumpIndexDirty_ = true;
    for (auto it = groups_.begin(); it != groups_.end(); ++it) {
        if (it->get() == g) {
            groups_.erase(it);
            return;
        }
    }
}

void
Ticker::saveState(state::SaveContext &ctx) const
{
    state::ArchiveWriter &w = ctx.w();
    w.putU64(ticks_);
    w.putU32(static_cast<std::uint32_t>(groups_.size()));
    for (const auto &gp : groups_) {
        const Group &g = *gp;
        std::uint32_t live = 0;
        for (const Member &m : g.members) {
            if (m.clocked == nullptr)
                continue;
            if (m.own == Ownership::kTransient)
                throw state::ArchiveError(
                    "Ticker: transient member '" +
                    std::string(m.clocked->tickName()) +
                    "' still registered — detach samplers before "
                    "snapshotting");
            ++live;
        }
        w.putU64(g.rate.period);
        w.putU64(g.rate.phase);
        w.putI32(g.rate.priority);
        w.putU32(live);
        w.putU64(g.nextDue);
        ctx.putEvent(g.event);
    }
}

void
Ticker::restoreState(state::SectionReader &r, state::RestoreContext &ctx)
{
    ticks_ = r.getU64();
    if (r.getU32() != groups_.size())
        throw state::ArchiveError(
            "Ticker: rate-group count mismatch — persistent members must "
            "re-register at construction");
    for (auto &gp : groups_) {
        Group &g = *gp;
        TickRate rate;
        rate.period = r.getU64();
        rate.phase = r.getU64();
        rate.priority = r.getI32();
        if (!(rate == g.rate))
            throw state::ArchiveError("Ticker: rate-group key mismatch");
        if (r.getU32() != g.members.size())
            throw state::ArchiveError(
                "Ticker: member count mismatch in a rate group");
        g.nextDue = r.getU64();
        // Drop the event armed during construction; the saved group
        // clock re-arms at its original absolute time (deferred and
        // sequence-ordered by the RestoreContext).
        if (g.event != EventQueue::kInvalidEvent) {
            eq_.deschedule(g.event);
            g.event = EventQueue::kInvalidEvent;
        }
        Group *raw = &g;
        ctx.getEvent(r, [this, raw](EventQueue &eq, Time when,
                                    int priority) {
            raw->nextDue = when;
            raw->event = eq.schedule(
                when, [this, raw] { fireGroup(*raw); }, priority);
            pumpIndexDirty_ = true;
        });
    }
}

} // namespace ich
