#include "common/ticker.hh"

#include <stdexcept>
#include <string>

#include "state/snapshot.hh"

namespace ich
{

Ticker::~Ticker()
{
    // Pending group events capture raw Group pointers; never leave one
    // behind in an EventQueue that may keep running.
    for (auto &g : groups_)
        if (g->event != EventQueue::kInvalidEvent)
            eq_.deschedule(g->event);
}

Time
Ticker::firstDueAfter(const TickRate &rate, Time now)
{
    if (rate.phase > now)
        return rate.phase;
    // Smallest phase + k*period strictly after now.
    Time elapsed = now - rate.phase;
    return rate.phase + (elapsed / rate.period + 1) * rate.period;
}

Ticker::Group &
Ticker::groupFor(TickRate rate)
{
    for (auto &g : groups_)
        if (g->rate == rate)
            return *g;
    groups_.push_back(std::make_unique<Group>());
    groups_.back()->rate = rate;
    return *groups_.back();
}

void
Ticker::add(Clocked &c, TickRate rate, Ownership own)
{
    if (rate.period == 0)
        throw std::invalid_argument("Ticker: zero tick period");
    Group &g = groupFor(rate);
    bool was_idle = g.event == EventQueue::kInvalidEvent;
    g.members.push_back(Member{&c, own, firstDueAfter(rate, eq_.now())});
    // An idle group arms on its first member; while the group is
    // dispatching, fireGroup() re-arms after the pass instead.
    if (was_idle && !g.dispatching) {
        g.nextDue = firstDueAfter(rate, eq_.now());
        armGroup(g);
    }
}

void
Ticker::remove(Clocked &c)
{
    for (auto &gp : groups_) {
        Group &g = *gp;
        for (std::size_t i = 0; i < g.members.size(); ++i) {
            if (g.members[i].clocked != &c)
                continue;
            if (g.dispatching) {
                g.members[i].clocked = nullptr; // skipped for this pass
                g.hasHoles = true;
            } else {
                g.members.erase(g.members.begin() +
                                static_cast<std::ptrdiff_t>(i));
                if (g.members.empty()) {
                    if (g.event != EventQueue::kInvalidEvent)
                        eq_.deschedule(g.event);
                    // Drop the group: lingering empty groups would
                    // desync the save/restore group-count match.
                    pruneGroup(&g);
                }
            }
            return;
        }
    }
}

bool
Ticker::contains(const Clocked &c) const
{
    for (const auto &g : groups_)
        for (const Member &m : g->members)
            if (m.clocked == &c)
                return true;
    return false;
}

std::size_t
Ticker::memberCount() const
{
    std::size_t n = 0;
    for (const auto &g : groups_)
        for (const Member &m : g->members)
            if (m.clocked != nullptr)
                ++n;
    return n;
}

void
Ticker::armGroup(Group &g)
{
    Group *gp = &g;
    g.event = eq_.scheduleChecked(
        g.nextDue, [this, gp] { fireGroup(*gp); }, g.rate.priority);
}

void
Ticker::fireGroup(Group &g)
{
    g.event = EventQueue::kInvalidEvent;
    g.dispatching = true;
    Time now = eq_.now();
    // Fixed bound: members added during the pass tick next period.
    const std::size_t count = g.members.size();
    for (std::size_t i = 0; i < count; ++i) {
        const Member &m = g.members[i];
        if (m.clocked != nullptr && now >= m.minDue) {
            ++ticks_;
            m.clocked->tick(now);
        }
    }
    g.dispatching = false;
    if (g.hasHoles) {
        g.hasHoles = false;
        std::size_t w = 0;
        for (std::size_t i = 0; i < g.members.size(); ++i)
            if (g.members[i].clocked != nullptr)
                g.members[w++] = g.members[i];
        g.members.resize(w);
    }
    if (g.members.empty()) {
        pruneGroup(&g); // frees g — must be the last use
        return;
    }
    g.nextDue += g.rate.period;
    armGroup(g);
}

void
Ticker::pruneGroup(Group *g)
{
    for (auto it = groups_.begin(); it != groups_.end(); ++it) {
        if (it->get() == g) {
            groups_.erase(it);
            return;
        }
    }
}

void
Ticker::saveState(state::SaveContext &ctx) const
{
    state::ArchiveWriter &w = ctx.w();
    w.putU64(ticks_);
    w.putU32(static_cast<std::uint32_t>(groups_.size()));
    for (const auto &gp : groups_) {
        const Group &g = *gp;
        std::uint32_t live = 0;
        for (const Member &m : g.members) {
            if (m.clocked == nullptr)
                continue;
            if (m.own == Ownership::kTransient)
                throw state::ArchiveError(
                    "Ticker: transient member '" +
                    std::string(m.clocked->tickName()) +
                    "' still registered — detach samplers before "
                    "snapshotting");
            ++live;
        }
        w.putU64(g.rate.period);
        w.putU64(g.rate.phase);
        w.putI32(g.rate.priority);
        w.putU32(live);
        w.putU64(g.nextDue);
        ctx.putEvent(g.event);
    }
}

void
Ticker::restoreState(state::SectionReader &r, state::RestoreContext &ctx)
{
    ticks_ = r.getU64();
    if (r.getU32() != groups_.size())
        throw state::ArchiveError(
            "Ticker: rate-group count mismatch — persistent members must "
            "re-register at construction");
    for (auto &gp : groups_) {
        Group &g = *gp;
        TickRate rate;
        rate.period = r.getU64();
        rate.phase = r.getU64();
        rate.priority = r.getI32();
        if (!(rate == g.rate))
            throw state::ArchiveError("Ticker: rate-group key mismatch");
        if (r.getU32() != g.members.size())
            throw state::ArchiveError(
                "Ticker: member count mismatch in a rate group");
        g.nextDue = r.getU64();
        // Drop the event armed during construction; the saved group
        // clock re-arms at its original absolute time (deferred and
        // sequence-ordered by the RestoreContext).
        if (g.event != EventQueue::kInvalidEvent) {
            eq_.deschedule(g.event);
            g.event = EventQueue::kInvalidEvent;
        }
        Group *raw = &g;
        ctx.getEvent(r, [this, raw](EventQueue &eq, Time when,
                                    int priority) {
            raw->nextDue = when;
            raw->event = eq.schedule(
                when, [this, raw] { fireGroup(*raw); }, priority);
        });
    }
}

} // namespace ich
