/**
 * @file
 * Fundamental unit types used across the IChannels simulator.
 *
 * Simulated time is kept as an unsigned 64-bit picosecond count, which
 * covers ~213 days of simulated time — far beyond any experiment in the
 * paper (the longest runs are a few simulated seconds). Analog quantities
 * (volts, amps, farads, ohms, hertz) use double precision.
 */

#ifndef ICH_COMMON_TYPES_HH
#define ICH_COMMON_TYPES_HH

#include <cstdint>

namespace ich
{

/** Simulated time in picoseconds. */
using Time = std::uint64_t;

/** Cycle count (core clock or TSC). */
using Cycles = std::uint64_t;

/** Hardware identifiers. */
using CoreId = int;
using ThreadId = int;

/**
 * "Never" sentinel for absolute-time queries (the value
 * EventQueue::nextEventTime() returns on an empty queue, and what the
 * fast-forward nextInterestingTime() queries return for a component
 * with no committed deadline). Safe to min() against real times.
 */
constexpr Time kTimeNever = ~Time{0};

namespace time_literals
{

constexpr Time kPicosecond = 1;
constexpr Time kNanosecond = 1000;
constexpr Time kMicrosecond = 1000 * kNanosecond;
constexpr Time kMillisecond = 1000 * kMicrosecond;
constexpr Time kSecond = 1000 * kMillisecond;

} // namespace time_literals

/** Convert picoseconds to floating-point seconds/micro/nanoseconds. */
constexpr double
toSeconds(Time t)
{
    return static_cast<double>(t) * 1e-12;
}

constexpr double
toMicroseconds(Time t)
{
    return static_cast<double>(t) * 1e-6;
}

constexpr double
toNanoseconds(Time t)
{
    return static_cast<double>(t) * 1e-3;
}

/** Convert floating-point seconds/micro/nanoseconds to picoseconds. */
constexpr Time
fromSeconds(double s)
{
    return static_cast<Time>(s * 1e12 + 0.5);
}

constexpr Time
fromMicroseconds(double us)
{
    return static_cast<Time>(us * 1e6 + 0.5);
}

constexpr Time
fromNanoseconds(double ns)
{
    return static_cast<Time>(ns * 1e3 + 0.5);
}

constexpr Time
fromMilliseconds(double ms)
{
    return static_cast<Time>(ms * 1e9 + 0.5);
}

/** Period of one clock cycle at the given frequency, in picoseconds. */
constexpr double
cyclePicos(double freq_ghz)
{
    return 1000.0 / freq_ghz;
}

} // namespace ich

#endif // ICH_COMMON_TYPES_HH
