#include "common/rng.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "state/snapshot.hh"

namespace ich
{

double
Rng::uniform()
{
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double
Rng::uniform(double lo, double hi)
{
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::uint64_t
Rng::uniformInt(std::uint64_t lo, std::uint64_t hi)
{
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
}

double
Rng::normal(double mean, double stddev)
{
    if (stddev <= 0.0)
        return mean;
    return std::normal_distribution<double>(mean, stddev)(engine_);
}

double
Rng::normalAtLeast(double mean, double stddev, double lo)
{
    return std::max(lo, normal(mean, stddev));
}

Time
Rng::exponentialInterarrival(double rate_per_second)
{
    if (rate_per_second <= 0.0)
        return ~Time{0};
    double seconds =
        std::exponential_distribution<double>(rate_per_second)(engine_);
    // Clamp to at least 1 ps so back-to-back arrivals still advance time.
    return std::max<Time>(1, fromSeconds(seconds));
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

Rng
Rng::fork()
{
    return Rng(engine_());
}

void
Rng::saveState(state::SaveContext &ctx) const
{
    std::ostringstream os;
    os << engine_;
    ctx.w().putString(os.str());
}

void
Rng::restoreState(state::SectionReader &r)
{
    std::istringstream is(r.getString());
    is >> engine_;
    if (is.fail())
        throw state::ArchiveError("Rng: malformed engine state");
}

} // namespace ich
