/**
 * @file
 * Deterministic random number generation for the simulator.
 *
 * Every stochastic component (measurement jitter, OS noise arrivals,
 * concurrent-application PHI injection) draws from one seeded Rng so an
 * entire experiment is reproducible from a single seed.
 */

#ifndef ICH_COMMON_RNG_HH
#define ICH_COMMON_RNG_HH

#include <cstdint>
#include <random>

#include "common/types.hh"
#include "state/fwd.hh"

namespace ich
{

/**
 * Thin deterministic wrapper around std::mt19937_64 with the sampling
 * helpers the simulator needs.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

    /** Re-seed the generator. */
    void seed(std::uint64_t s) { engine_.seed(s); }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

    /** Normal sample with the given mean/stddev. */
    double normal(double mean, double stddev);

    /**
     * Normal sample truncated at @p lo (values below are clamped).
     * Used for non-negative latency jitter.
     */
    double normalAtLeast(double mean, double stddev, double lo);

    /** Exponential inter-arrival sample for a Poisson process (rate /s). */
    Time exponentialInterarrival(double rate_per_second);

    /** Bernoulli trial with probability @p p. */
    bool chance(double p);

    /** Fork an independent sub-stream (for per-component determinism). */
    Rng fork();

    /**
     * Snapshot hooks: the mt19937_64 engine serializes via its standard
     * stream representation, so a restored Rng continues the exact
     * sample stream of the saved one.
     */
    void saveState(state::SaveContext &ctx) const;
    void restoreState(state::SectionReader &r);

  private:
    std::mt19937_64 engine_;
};

} // namespace ich

#endif // ICH_COMMON_RNG_HH
