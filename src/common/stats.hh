/**
 * @file
 * Small statistics helpers: running summaries and fixed-bin histograms.
 * Used by the characterization benches (TP distributions, BER sweeps) and
 * by the channel-quality accounting.
 */

#ifndef ICH_COMMON_STATS_HH
#define ICH_COMMON_STATS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace ich
{

/**
 * Online summary (count/mean/min/max/stddev) plus retained samples for
 * quantile queries.
 */
class Summary
{
  public:
    void add(double x);

    std::size_t count() const { return samples_.size(); }
    double mean() const;
    double min() const;
    double max() const;
    double stddev() const;

    /** q in [0,1]; linear interpolation between order statistics. */
    double quantile(double q) const;

    const std::vector<double> &samples() const { return samples_; }

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;
    double sum_ = 0.0;
    double sumSq_ = 0.0;

    void ensureSorted() const;
};

/**
 * Fixed-width-bin histogram over [lo, hi); out-of-range samples are
 * clamped into the edge bins so probability mass is never lost.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);

    std::size_t bins() const { return counts_.size(); }
    std::size_t total() const { return total_; }
    std::size_t binCount(std::size_t i) const { return counts_.at(i); }
    double binLo(std::size_t i) const;
    double binHi(std::size_t i) const;
    double binCenter(std::size_t i) const;

    /** Fraction of samples in bin i (0 if empty histogram). */
    double density(std::size_t i) const;

    /** Render as "center count density" rows (for bench output). */
    std::string toString(const std::string &label = "") const;

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace ich

#endif // ICH_COMMON_STATS_HH
