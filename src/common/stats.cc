#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace ich
{

void
Summary::add(double x)
{
    samples_.push_back(x);
    sorted_ = false;
    sum_ += x;
    sumSq_ += x * x;
}

double
Summary::mean() const
{
    return samples_.empty() ? 0.0 : sum_ / samples_.size();
}

double
Summary::min() const
{
    if (samples_.empty())
        return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
}

double
Summary::max() const
{
    if (samples_.empty())
        return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

double
Summary::stddev() const
{
    std::size_t n = samples_.size();
    if (n < 2)
        return 0.0;
    double m = mean();
    double var = (sumSq_ - n * m * m) / (n - 1);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
Summary::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
Summary::quantile(double q) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    q = std::clamp(q, 0.0, 1.0);
    double pos = q * (samples_.size() - 1);
    std::size_t lo = static_cast<std::size_t>(pos);
    std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = pos - lo;
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    if (bins == 0 || hi <= lo)
        throw std::invalid_argument("Histogram: bad range or bin count");
}

void
Histogram::add(double x)
{
    double width = (hi_ - lo_) / counts_.size();
    long idx = static_cast<long>(std::floor((x - lo_) / width));
    idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

double
Histogram::binLo(std::size_t i) const
{
    double width = (hi_ - lo_) / counts_.size();
    return lo_ + i * width;
}

double
Histogram::binHi(std::size_t i) const
{
    double width = (hi_ - lo_) / counts_.size();
    return lo_ + (i + 1) * width;
}

double
Histogram::binCenter(std::size_t i) const
{
    return 0.5 * (binLo(i) + binHi(i));
}

double
Histogram::density(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_.at(i)) / total_;
}

std::string
Histogram::toString(const std::string &label) const
{
    std::ostringstream os;
    if (!label.empty())
        os << "# " << label << "\n";
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        os << binCenter(i) << " " << counts_[i] << " " << density(i)
           << "\n";
    }
    return os.str();
}

} // namespace ich
