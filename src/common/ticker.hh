/**
 * @file
 * Rate-grouped tick scheduler for clocked components.
 *
 * Every periodic housekeeping mechanism in the chip — RAPL power-limit
 * windows, periodic governor evaluation, thermal-model sampling, DAQ
 * probes — used to self-reschedule its own event-queue event, so N
 * components at the same rate cost N heap operations per period. The
 * Ticker coalesces that traffic: components implement Clocked and
 * register with a TickRate; the Ticker groups registrations by exact
 * (period, phase, priority) and schedules **one** event per group per
 * period, dispatching every member in deterministic registration order.
 *
 * Ordering contract: a group's event fires at phase + k*period with the
 * group's priority, exactly where a lone self-rescheduling component's
 * event would have fired — so migrating a single component onto the
 * Ticker preserves the observable (time, priority, seq) event ordering.
 * Members of one group tick back-to-back at the same timestamp in the
 * order they registered.
 *
 * Mutation during dispatch is legal: a member added while its group is
 * ticking first ticks on the *next* period; a member removed while its
 * group is ticking (itself included) is skipped for the rest of the
 * pass.
 *
 * Snapshots: group clocks (next-due time plus the pending group event)
 * are part of the state/ quiesce contract. Members registered as
 * kPersistent must re-register during construction in the same order
 * (component construction is config-deterministic), and the group then
 * re-arms at its saved absolute time. kTransient members (samplers such
 * as Daq) must be removed before snapshotting — saveState() throws
 * otherwise, mirroring the event census's loud-failure rule.
 *
 * This header also provides CoalescedTimer, the companion pattern for
 * *aperiodic* decay/hysteresis deadlines (guardband reset-time): keep
 * at most one pending event and never deschedule on deadline extension;
 * the callback re-checks its own deadline and re-arms. Extending a
 * deadline then costs zero heap operations instead of a
 * deschedule+schedule pair per update.
 */

#ifndef ICH_COMMON_TICKER_HH
#define ICH_COMMON_TICKER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/event_queue.hh"
#include "common/types.hh"
#include "state/fwd.hh"

namespace ich
{

/** Identity of a tick group: fire at phase + k*period, tie-broken by
 *  priority among same-timestamp events. */
struct TickRate {
    Time period = 0;
    Time phase = 0;
    int priority = 0;

    bool
    operator==(const TickRate &o) const
    {
        return period == o.period && phase == o.phase &&
               priority == o.priority;
    }
};

/** Interface for components driven by the Ticker. */
class Clocked
{
  public:
    virtual ~Clocked() = default;

    /** Called once per period of the registered rate. */
    virtual void tick(Time now) = 0;

    /** Diagnostic name (snapshot errors, tests). */
    virtual const char *tickName() const { return "clocked"; }
};

/**
 * Groups Clocked components by rate and drives each group with a single
 * event-queue event per period.
 */
class Ticker
{
  public:
    /** How a member relates to the snapshot contract (see file header). */
    enum class Ownership {
        kPersistent, ///< re-registered at construction; part of snapshots
        kTransient,  ///< must be removed before snapshotting
    };

    explicit Ticker(EventQueue &eq) : eq_(eq) {}

    /** Deschedules every group event — none may outlive the Ticker. */
    ~Ticker();

    Ticker(const Ticker &) = delete;
    Ticker &operator=(const Ticker &) = delete;

    EventQueue &eq() { return eq_; }

    /**
     * Register @p c to tick at @p rate (period must be nonzero). The
     * first tick fires at the earliest grid point phase + k*period
     * strictly after now(). Members registered while their group is
     * dispatching first tick on the next period.
     */
    void add(Clocked &c, TickRate rate,
             Ownership own = Ownership::kPersistent);

    /** Unregister @p c (first matching registration; no-op if absent). */
    void remove(Clocked &c);

    /** True if @p c has a live registration. */
    bool contains(const Clocked &c) const;

    /** Live (period, phase, priority) groups (empty groups are pruned). */
    std::size_t groupCount() const { return groups_.size(); }

    /** Live registrations across all groups. */
    std::size_t memberCount() const;

    /** Total member tick() calls delivered (stats/tests). */
    std::uint64_t ticksDelivered() const { return ticks_; }

    /**
     * Fast-forward pump: while the event queue's head is one of this
     * Ticker's group events due at or before @p until, fire the group
     * in place — same members, same timestamps, same registration
     * order, same arithmetic as the popped dispatch — without the heap
     * pop/push, slot recycle, or callback construction per period. The
     * group's pending event is retargeted via reschedule(), which burns
     * exactly the insertion sequence armGroup()'s schedule() would, so
     * events scheduled by members interleave identically with the
     * stepped path (ties included) and executedEvents()/snapshot bytes
     * are unchanged. Any non-tick event at the head stops the pump and
     * surfaces to the caller's normal dispatch loop — that is how VR
     * ramp completions, SVID transactions, p-state transitions and
     * thread chunk boundaries suppress skipping.
     *
     * @return group fires performed (0 when the head is not a due tick).
     */
    std::uint64_t fastForward(Time until);

    /** Total inline group fires performed by fastForward() (stats; not
     *  serialized — legacy and fast-forward runs snapshot identically). */
    std::uint64_t ffFires() const { return ffFires_; }

    /** Earliest armed group due time, or ~Time{0} with no armed group. */
    Time nextGroupDue() const;

    /**
     * Snapshot hooks. Group clocks re-arm at their saved absolute times;
     * persistent members must already have re-registered (construction
     * order is config-deterministic). Throws while a transient member is
     * still registered.
     */
    void saveState(state::SaveContext &ctx) const;
    void restoreState(state::SectionReader &r, state::RestoreContext &ctx);

  private:
    struct Member {
        Clocked *clocked = nullptr; ///< null = removed during dispatch
        Ownership own = Ownership::kPersistent;
        /**
         * Earliest grid point strictly after registration. Guards the
         * strictly-after-now contract when a member joins an existing
         * group whose pending event fires at the current timestamp.
         */
        Time minDue = 0;
    };

    /** One rate group; heap-allocated so event captures stay stable. */
    struct Group {
        TickRate rate;
        Time nextDue = 0;
        EventId event = EventQueue::kInvalidEvent;
        std::vector<Member> members; ///< registration order
        bool dispatching = false;
        bool hasHoles = false;
    };

    EventQueue &eq_;
    std::vector<std::unique_ptr<Group>> groups_; ///< creation order
    std::uint64_t ticks_ = 0;
    std::uint64_t ffFires_ = 0;
    /**
     * Pending-event → group index for the pump's head lookup, keyed by
     * the event's dense slot (EventQueue::slotIndex). Rebuilt lazily
     * whenever a group arms, re-arms, or is pruned; steady-state inline
     * fires keep their EventId through reschedule() so the index
     * survives whole pumped spans untouched.
     */
    std::vector<Group *> pumpIndex_;
    bool pumpIndexDirty_ = true;

    Group &groupFor(TickRate rate);
    void armGroup(Group &g);
    void fireGroup(Group &g);
    void fireGroupInline(Group &g);
    void pruneGroup(Group *g);

    /** Earliest grid point strictly after @p now. */
    static Time firstDueAfter(const TickRate &rate, Time now);
};

/**
 * Deadline-coalesced one-shot timer ("sloppy timer").
 *
 * For deadlines that only ever move *later* (idle timeouts, hysteresis
 * reset-times), rescheduling on every update is wasted heap traffic.
 * Instead, arm once; when the event fires, the owner's callback calls
 * fired(), re-checks its real deadline, and re-arms via arm() if the
 * deadline has moved. Extending the deadline while an event is pending
 * is free — arm() is a no-op — and the observable state change still
 * happens exactly at the true deadline, because every early fire
 * re-arms at the then-current deadline.
 */
class CoalescedTimer
{
  public:
    /** True while an event is pending (the owner must not re-arm). */
    bool pending() const { return event_ != EventQueue::kInvalidEvent; }

    /**
     * Arm the callback at @p when unless already pending. The callback
     * must call fired() before anything else, then re-check its deadline
     * and re-arm if the deadline has moved past now().
     */
    template <class F>
    void
    arm(EventQueue &eq, Time when, F &&cb, int priority = 0)
    {
        if (pending())
            return;
        event_ = eq.scheduleChecked(when, std::forward<F>(cb), priority);
    }

    /**
     * Arm at @p when, or — unlike arm() — move an already-pending
     * deadline there, in either direction, via EventQueue::reschedule():
     * the pending event is retargeted in place (callback, handle and
     * priority preserved; no deschedule+schedule pair, no heap
     * tombstone). For deadlines that genuinely move both ways (e.g. a
     * VR transition superseded by a shorter one); deadlines that only
     * extend should keep using arm(), whose no-op is cheaper still.
     */
    template <class F>
    void
    retarget(EventQueue &eq, Time when, F &&cb, int priority = 0)
    {
        if (pending() && eq.reschedule(event_, when))
            return;
        event_ = eq.scheduleChecked(when, std::forward<F>(cb), priority);
    }

    /** Mark the pending event as consumed (call first in the callback). */
    void fired() { event_ = EventQueue::kInvalidEvent; }

    /** Cancel the pending event, if any. */
    void
    cancel(EventQueue &eq)
    {
        if (!pending())
            return;
        eq.deschedule(event_);
        event_ = EventQueue::kInvalidEvent;
    }

    /** Raw handle (snapshot putEvent / tests). */
    EventId id() const { return event_; }

    /** Adopt a handle re-armed by a snapshot restore. */
    void adopt(EventId id) { event_ = id; }

  private:
    EventId event_ = EventQueue::kInvalidEvent;
};

} // namespace ich

#endif // ICH_COMMON_TICKER_HH
