/**
 * @file
 * Minimal leveled logging. Off by default so tests and benches stay quiet;
 * enable for debugging simulator traces.
 */

#ifndef ICH_COMMON_LOG_HH
#define ICH_COMMON_LOG_HH

#include <sstream>
#include <string>

#include "common/types.hh"

namespace ich
{

enum class LogLevel { kNone = 0, kWarn = 1, kInfo = 2, kTrace = 3 };

/** Global log configuration. */
class Log
{
  public:
    static LogLevel level();
    static void setLevel(LogLevel lvl);

    /** Emit one line if @p lvl is enabled; prefixes simulated time. */
    static void write(LogLevel lvl, Time now, const std::string &msg);
};

} // namespace ich

#endif // ICH_COMMON_LOG_HH
