#include "common/log.hh"

#include <cstdio>

namespace ich
{

namespace
{
LogLevel gLevel = LogLevel::kNone;
} // namespace

LogLevel
Log::level()
{
    return gLevel;
}

void
Log::setLevel(LogLevel lvl)
{
    gLevel = lvl;
}

void
Log::write(LogLevel lvl, Time now, const std::string &msg)
{
    if (static_cast<int>(lvl) > static_cast<int>(gLevel))
        return;
    std::fprintf(stderr, "[%12.3f us] %s\n", toMicroseconds(now),
                 msg.c_str());
}

} // namespace ich
