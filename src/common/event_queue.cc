#include "common/event_queue.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "state/snapshot.hh"

// Branch hints for the churn hot path. The slow arms (slab growth,
// stale handles, tombstones surfacing, scheduling-into-the-past
// throws) run orders of magnitude less often than the fast arms, so
// telling the compiler keeps the fall-through path straight-line under
// -O3 where the heap-position side array already costs a few percent.
#if defined(__GNUC__) || defined(__clang__)
#define ICH_LIKELY(x) __builtin_expect(!!(x), 1)
#define ICH_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define ICH_LIKELY(x) (x)
#define ICH_UNLIKELY(x) (x)
#endif

namespace ich
{

EventQueue::~EventQueue() = default;

std::uint32_t
EventQueue::allocSlot()
{
    if (ICH_UNLIKELY(freeHead_ == kNilIndex)) {
        // Grow one slab and thread it onto the free list in ascending
        // slot order (order is irrelevant for event ordering — the heap
        // tie-breaks on the insertion sequence — but keeps ids tidy).
        std::uint32_t base =
            static_cast<std::uint32_t>(slabs_.size()) * kSlabSize;
        slabs_.push_back(std::make_unique<Node[]>(kSlabSize));
        heapPos_.resize(heapPos_.size() + kSlabSize);
        for (std::uint32_t i = 0; i < kSlabSize; ++i)
            node(base + i).nextFree =
                (i + 1 < kSlabSize) ? base + i + 1 : kNilIndex;
        freeHead_ = base;
    }
    std::uint32_t slot = freeHead_;
    freeHead_ = node(slot).nextFree;
    return slot;
}

void
EventQueue::releaseSlot(std::uint32_t slot)
{
    Node &n = node(slot);
    // Invalidate every outstanding handle to this slot. Wraparound after
    // 2^32 reuses of one slot could theoretically resurrect a stale id;
    // no simulated workload comes near that.
    ++n.gen;
    n.cb.reset();
    n.live = false;
    n.nextFree = freeHead_;
    freeHead_ = slot;
}

EventId
EventQueue::schedule(Time when, Callback cb, int priority)
{
    if (ICH_UNLIKELY(when < now_))
        throw std::logic_error("EventQueue: scheduling into the past");
    std::uint32_t slot = allocSlot();
    Node &n = node(slot);
    n.cb = std::move(cb);
    n.live = true;
    heapPush({when, nextSeq_++, priority, slot});
    ++liveEvents_;
    return makeId(slot, n.gen);
}

void
EventQueue::deschedule(EventId id)
{
    std::uint64_t slotPlus1 = id >> 32;
    if (ICH_UNLIKELY(slotPlus1 == 0 ||
                     slotPlus1 > slabs_.size() * kSlabSize))
        return;
    Node &n = node(static_cast<std::uint32_t>(slotPlus1 - 1));
    if (!n.live || n.gen != static_cast<std::uint32_t>(id))
        return;
    // Tombstone: the heap entry stays until it surfaces at the root.
    // Drop the callback now so captured state is released eagerly.
    n.live = false;
    n.cb.reset();
    assert(liveEvents_ > 0);
    --liveEvents_;
}

bool
EventQueue::reschedule(EventId id, Time when)
{
    if (ICH_UNLIKELY(when < now_))
        throw std::logic_error("EventQueue: rescheduling into the past");
    std::uint64_t slotPlus1 = id >> 32;
    if (ICH_UNLIKELY(slotPlus1 == 0 ||
                     slotPlus1 > slabs_.size() * kSlabSize))
        return false;
    std::uint32_t slot = static_cast<std::uint32_t>(slotPlus1 - 1);
    Node &n = node(slot);
    if (!n.live || n.gen != static_cast<std::uint32_t>(id))
        return false;
    std::size_t i = heapPos_[slot];
    assert(i < heap_.size() && heap_[i].slot == slot);
    HeapEntry e = heap_[i];
    e.when = when;
    // A fresh sequence keeps (time, priority, seq) ordering identical to
    // the deschedule+schedule pair this replaces.
    e.seq = nextSeq_++;
    siftAt(i, e);
    return true;
}

void
EventQueue::siftAt(std::size_t i, const HeapEntry &e)
{
    // Hole-based decrease-or-increase-key: the new key either rises
    // toward the root or sinks toward the leaves, never both. The heap
    // and side array never grow inside a sift, so both are addressed
    // through raw pointers — under -O3 this drops the per-move bounds/
    // capacity reloads the vector accessors cost (the side-array write
    // doubled the memory traffic per displaced entry).
    HeapEntry *const h = heap_.data();
    std::uint32_t *const pos = heapPos_.data();
    if (i > 0 && entryBefore(e, h[(i - 1) / 4])) {
        do {
            std::size_t parent = (i - 1) / 4;
            if (!entryBefore(e, h[parent]))
                break;
            h[i] = h[parent];
            pos[h[i].slot] = static_cast<std::uint32_t>(i);
            i = parent;
        } while (i > 0);
    } else {
        const std::size_t n = heap_.size();
        for (;;) {
            std::size_t first = 4 * i + 1;
            if (first >= n)
                break;
            std::size_t best = first;
            const std::size_t end = std::min(first + 4, n);
            for (std::size_t c = first + 1; c < end; ++c)
                if (entryBefore(h[c], h[best]))
                    best = c;
            if (!entryBefore(h[best], e))
                break;
            h[i] = h[best];
            pos[h[i].slot] = static_cast<std::uint32_t>(i);
            i = best;
        }
    }
    h[i] = e;
    pos[e.slot] = static_cast<std::uint32_t>(i);
}

bool
EventQueue::pruneHead()
{
    while (ICH_LIKELY(!heap_.empty())) {
        std::uint32_t slot = heap_.front().slot;
        if (ICH_LIKELY(node(slot).live))
            return true;
        heapPopRoot();
        releaseSlot(slot);
    }
    return false;
}

Time
EventQueue::nextEventTime()
{
    return pruneHead() ? heap_.front().when : ~Time{0};
}

bool
EventQueue::peekNext(Time &when, EventId &id)
{
    if (!pruneHead())
        return false;
    const HeapEntry &e = heap_.front();
    when = e.when;
    id = makeId(e.slot, node(e.slot).gen);
    return true;
}

void
EventQueue::creditInlineEvent(Time when)
{
    assert(when >= now_);
    now_ = when;
    ++executed_;
}

bool
EventQueue::runOne()
{
    for (;;) {
        if (heap_.empty())
            return false;
        HeapEntry e = heap_.front();
        heapPopRoot();
        Node &n = node(e.slot);
        if (ICH_UNLIKELY(!n.live)) {
            releaseSlot(e.slot);
            continue;
        }
        assert(e.when >= now_);
        // Mark dead before dispatch so deschedule() of the running
        // event's own handle is a no-op; the slot is recycled only
        // after the callback returns, so events it schedules can never
        // collide with it. Node addresses are slab-stable, so growth
        // inside the callback cannot invalidate @c n. The guard keeps
        // the slot from leaking when the callback throws.
        n.live = false;
        assert(liveEvents_ > 0);
        --liveEvents_;
        now_ = e.when;
        ++executed_;
        struct SlotGuard {
            EventQueue *q;
            std::uint32_t slot;
            ~SlotGuard() { q->releaseSlot(slot); }
        } guard{this, e.slot};
        n.cb();
        return true;
    }
}

void
EventQueue::runUntil(Time t)
{
    while (pruneHead() && heap_.front().when <= t)
        runOne();
    if (t > now_)
        now_ = t;
}

Time
EventQueue::runToCompletion(Time horizon)
{
    while (pruneHead() && heap_.front().when <= horizon)
        runOne();
    return now_;
}

bool
EventQueue::pendingInfo(EventId id, Time &when, std::int32_t &priority,
                        std::uint64_t &seq) const
{
    std::uint64_t slotPlus1 = id >> 32;
    if (slotPlus1 == 0 || slotPlus1 > slabs_.size() * kSlabSize)
        return false;
    std::uint32_t slot = static_cast<std::uint32_t>(slotPlus1 - 1);
    const Node &n = slabs_[slot / kSlabSize][slot % kSlabSize];
    if (!n.live || n.gen != static_cast<std::uint32_t>(id))
        return false;
    assert(heapPos_[slot] < heap_.size() &&
           heap_[heapPos_[slot]].slot == slot);
    const HeapEntry &e = heap_[heapPos_[slot]];
    when = e.when;
    priority = e.priority;
    seq = e.seq;
    return true;
}

void
EventQueue::saveState(state::SaveContext &ctx) const
{
    ctx.w().putU64(now_);
    ctx.w().putU64(nextSeq_);
    ctx.w().putU64(executed_);
}

void
EventQueue::restoreState(state::SectionReader &r)
{
    // The queue may still hold events scheduled during construction of
    // the fresh simulation (e.g. the PowerLimiter's first evaluation);
    // their owners deschedule and re-arm them in their own
    // restoreState(), so only the counters restore here.
    now_ = r.getU64();
    nextSeq_ = r.getU64();
    executed_ = r.getU64();
}

void
EventQueue::heapPush(const HeapEntry &e)
{
    heap_.push_back(e);
    siftAt(heap_.size() - 1, e); // a tail entry can only sift up
}

void
EventQueue::heapPopRoot()
{
    assert(!heap_.empty());
    HeapEntry last = heap_.back();
    heap_.pop_back();
    if (heap_.empty())
        return;
    siftAt(0, last); // the displaced tail entry can only sift down
}

} // namespace ich
