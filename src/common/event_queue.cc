#include "common/event_queue.hh"

#include <cassert>
#include <stdexcept>

namespace ich
{

EventId
EventQueue::schedule(Time when, Callback cb, int priority)
{
    if (when < now_)
        throw std::logic_error("EventQueue: scheduling into the past");
    auto entry = std::make_shared<Entry>();
    entry->when = when;
    entry->priority = priority;
    entry->id = nextId_++;
    entry->cb = std::move(cb);
    byId_[entry->id] = entry;
    queue_.push(entry);
    ++liveEvents_;
    return entry->id;
}

void
EventQueue::deschedule(EventId id)
{
    auto it = byId_.find(id);
    if (it == byId_.end())
        return;
    if (auto entry = it->second.lock()) {
        if (!entry->cancelled) {
            entry->cancelled = true;
            assert(liveEvents_ > 0);
            --liveEvents_;
        }
    }
    byId_.erase(it);
}

Time
EventQueue::nextEventTime()
{
    while (!queue_.empty() && queue_.top()->cancelled)
        queue_.pop();
    return queue_.empty() ? ~Time{0} : queue_.top()->when;
}

bool
EventQueue::runOne()
{
    while (!queue_.empty()) {
        auto entry = queue_.top();
        queue_.pop();
        if (entry->cancelled)
            continue;
        byId_.erase(entry->id);
        assert(liveEvents_ > 0);
        --liveEvents_;
        assert(entry->when >= now_);
        now_ = entry->when;
        ++executed_;
        entry->cb();
        return true;
    }
    return false;
}

void
EventQueue::runUntil(Time t)
{
    while (!queue_.empty()) {
        // Skip tombstones so top() reflects a live event.
        if (queue_.top()->cancelled) {
            queue_.pop();
            continue;
        }
        if (queue_.top()->when > t)
            break;
        runOne();
    }
    if (t > now_)
        now_ = t;
}

Time
EventQueue::runToCompletion(Time horizon)
{
    while (!queue_.empty()) {
        if (queue_.top()->cancelled) {
            queue_.pop();
            continue;
        }
        if (queue_.top()->when > horizon)
            break;
        runOne();
    }
    return now_;
}

} // namespace ich
