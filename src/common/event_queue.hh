/**
 * @file
 * Discrete-event simulation kernel.
 *
 * All simulator components share one EventQueue. Events are ordered by
 * (time, priority, insertion sequence) so same-timestamp events execute
 * deterministically. Events can be descheduled; cancellation is O(1).
 *
 * Hot-path design (this is the innermost loop of every covert-channel
 * trial and sweep point):
 *  - Event records live in a slab-allocated pool with free-list
 *    recycling, so schedule()/fire cycles perform no per-event heap
 *    allocation after warm-up.
 *  - Callbacks are InlineFn (small-buffer storage) instead of
 *    std::function, so the typical `[this, scalar...]` capture is stored
 *    in place.
 *  - EventId is generation-tagged (slot index + per-slot generation
 *    counter), so deschedule() validates a handle in O(1) with no id
 *    map; stale handles — already fired, already cancelled, or a slot
 *    since recycled — are no-ops by construction.
 *  - The ready queue is a flat 4-ary min-heap of POD entries; cancelled
 *    entries are dropped lazily when they surface at the root.
 */

#ifndef ICH_COMMON_EVENT_QUEUE_HH
#define ICH_COMMON_EVENT_QUEUE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/inline_fn.hh"
#include "common/types.hh"
#include "state/fwd.hh"

namespace ich
{

/**
 * Opaque handle identifying a scheduled event.
 *
 * Encoding: high 32 bits = slot index + 1 (so 0 stays the invalid
 * handle), low 32 bits = the slot's generation at scheduling time.
 */
using EventId = std::uint64_t;

/**
 * Deterministic discrete-event queue keyed by picosecond timestamps.
 */
class EventQueue
{
  public:
    using Callback = InlineFn<void()>;

    /** Invalid event handle. */
    static constexpr EventId kInvalidEvent = 0;

    /**
     * Dense slot index embedded in a valid handle — stable for the
     * lifetime of the pending event and bounded by the queue's slab
     * capacity, so callers can key O(1) side tables by event (the
     * Ticker's fast-forward pump does). Meaningless for kInvalidEvent.
     */
    static std::uint32_t
    slotIndex(EventId id)
    {
        return static_cast<std::uint32_t>(id >> 32) - 1;
    }

    EventQueue() = default;

    // The pool hands out interior pointers; moving the queue would not
    // preserve them cheaply and no caller needs it.
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue();

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     *
     * @param when Absolute timestamp; must be >= now().
     * @param cb Callback to invoke.
     * @param priority Tie-break among same-timestamp events (lower first).
     * @return Handle usable with deschedule().
     */
    EventId schedule(Time when, Callback cb, int priority = 0);

    /** Schedule @p cb to run @p delay picoseconds from now. */
    EventId
    scheduleIn(Time delay, Callback cb, int priority = 0)
    {
        return schedule(now_ + delay, std::move(cb), priority);
    }

    /**
     * schedule() that additionally proves at compile time the callback
     * fits the inline buffer. Hot call sites (one event per step /
     * sample / symbol / transition) use this so an accidentally
     * fattened capture is a compile error, not a silent per-event
     * allocation.
     */
    template <class F>
    EventId
    scheduleChecked(Time when, F &&f, int priority = 0)
    {
        static_assert(Callback::fits<F>(),
                      "hot-path event capture must stay allocation-free "
                      "(shrink the capture or use schedule())");
        return schedule(when, Callback(std::forward<F>(f)), priority);
    }

    /** scheduleIn() with the same compile-time inline-capture proof. */
    template <class F>
    EventId
    scheduleInChecked(Time delay, F &&f, int priority = 0)
    {
        return scheduleChecked(now_ + delay, std::forward<F>(f),
                               priority);
    }

    /**
     * Cancel a pending event. Safe to call with an already-fired,
     * already-cancelled, or otherwise stale handle (no-op) — including
     * the handle of the event currently being dispatched.
     */
    void deschedule(EventId id);

    /**
     * Retarget a pending event to fire at @p when instead, in place: the
     * heap entry is sifted to its new position, the slot, generation
     * (and so the handle), callback and priority are all preserved, and
     * a fresh insertion sequence is assigned — so the observable (time,
     * priority, seq) ordering is exactly what a deschedule()+schedule()
     * pair would produce, without the slot churn, callback move, or
     * heap tombstone.
     *
     * @return false for a stale handle (already fired, cancelled, or
     *         currently being dispatched) — the caller schedules fresh.
     */
    bool reschedule(EventId id, Time when);

    /** True if no live events remain. */
    bool empty() const { return liveEvents_ == 0; }

    /** Number of live (not cancelled, not fired) events. */
    std::size_t size() const { return liveEvents_; }

    /**
     * Timestamp of the next live event, or ~Time{0} when empty.
     * Discards cancelled entries encountered at the head.
     */
    Time nextEventTime();

    /**
     * Peek the next live event without running it: discards cancelled
     * entries at the head, then reports the head's timestamp and
     * handle. The fast-forward pump uses this to recognize events it
     * can fire in place (Ticker rate-group fires).
     *
     * @return false when the queue is empty.
     */
    bool peekNext(Time &when, EventId &id);

    /**
     * Credit one event fired in place: advance the clock to @p when
     * and count it as executed, without touching the heap. The inline
     * fire path (Ticker::fastForward) runs the head event's work
     * directly and retargets its heap entry via reschedule(), so this
     * keeps now()/executedEvents() — and therefore snapshot bytes —
     * identical to the popped dispatch path.
     */
    void creditInlineEvent(Time when);

    /**
     * Run the single next event, if any.
     * @return true if an event was executed.
     */
    bool runOne();

    /** Run all events with timestamp <= @p t, then set now() = t. */
    void runUntil(Time t);

    /**
     * Run events until the queue drains or @p horizon is exceeded.
     * @return simulated time at exit.
     */
    Time runToCompletion(Time horizon = ~Time{0});

    /** Total events executed (for stats/tests). */
    std::uint64_t executedEvents() const { return executed_; }

    /** Slots currently held by the pool (capacity diagnostic). */
    std::size_t poolCapacity() const { return slabs_.size() * kSlabSize; }

    /**
     * Look up a pending event's schedule parameters (used by component
     * saveState() to record re-armable events). Returns false for
     * invalid/stale/fired handles. O(1) via the slot's heap position.
     */
    bool pendingInfo(EventId id, Time &when, std::int32_t &priority,
                     std::uint64_t &seq) const;

    /**
     * Snapshot hooks: only the clock, insertion-sequence counter and
     * executed count serialize — pending events are owned and re-armed
     * by their components (see state/snapshot.hh).
     */
    void saveState(state::SaveContext &ctx) const;
    void restoreState(state::SectionReader &r);

  private:
    static constexpr std::uint32_t kSlabSize = 256;
    static constexpr std::uint32_t kNilIndex = ~std::uint32_t{0};

    /** Pooled event record; stable address within its slab. */
    struct Node {
        Callback cb;
        std::uint32_t gen = 0;       ///< bumped on every slot release
        std::uint32_t nextFree = kNilIndex;
        bool live = false;           ///< scheduled and not yet cancelled/fired
    };

    /** Heap entry; POD so sift operations are plain moves. */
    struct HeapEntry {
        Time when;
        std::uint64_t seq; ///< global insertion sequence (tie-break)
        std::int32_t priority;
        std::uint32_t slot;
    };

    static bool
    entryBefore(const HeapEntry &a, const HeapEntry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.priority != b.priority)
            return a.priority < b.priority;
        return a.seq < b.seq;
    }

    Node &
    node(std::uint32_t slot)
    {
        return slabs_[slot / kSlabSize][slot % kSlabSize];
    }

    static EventId
    makeId(std::uint32_t slot, std::uint32_t gen)
    {
        return (static_cast<EventId>(slot) + 1) << 32 | gen;
    }

    std::uint32_t allocSlot();
    void releaseSlot(std::uint32_t slot);

    /** Drop cancelled entries surfacing at the root; false when empty. */
    bool pruneHead();

    void heapPush(const HeapEntry &e);
    void heapPopRoot();

    /** Sift entry @p e (destined for position @p i) to its heap slot. */
    void siftAt(std::size_t i, const HeapEntry &e);

    Time now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::size_t liveEvents_ = 0;
    std::uint64_t executed_ = 0;

    std::vector<HeapEntry> heap_;
    std::vector<std::unique_ptr<Node[]>> slabs_;
    /**
     * Heap index of each slot's entry, maintained by every sift move. A
     * slot owns at most one heap entry (tombstoned entries keep their
     * slot until they surface), so the position is unique; it enables
     * O(log n) reschedule() and O(1) pendingInfo(). Kept as a dense
     * side array (one word per slot, grown with the pool) so the
     * per-move update stays in cache instead of touching each displaced
     * entry's pooled Node.
     */
    std::vector<std::uint32_t> heapPos_;
    std::uint32_t freeHead_ = kNilIndex;
};

} // namespace ich

#endif // ICH_COMMON_EVENT_QUEUE_HH
