/**
 * @file
 * Discrete-event simulation kernel.
 *
 * All simulator components share one EventQueue. Events are ordered by
 * (time, priority, insertion sequence) so same-timestamp events execute
 * deterministically. Events can be descheduled; cancellation is O(1)
 * (a tombstone flag checked at pop time).
 */

#ifndef ICH_COMMON_EVENT_QUEUE_HH
#define ICH_COMMON_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace ich
{

/** Opaque handle identifying a scheduled event. */
using EventId = std::uint64_t;

/**
 * Deterministic discrete-event queue keyed by picosecond timestamps.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Invalid event handle. */
    static constexpr EventId kInvalidEvent = 0;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     *
     * @param when Absolute timestamp; must be >= now().
     * @param cb Callback to invoke.
     * @param priority Tie-break among same-timestamp events (lower first).
     * @return Handle usable with deschedule().
     */
    EventId schedule(Time when, Callback cb, int priority = 0);

    /** Schedule @p cb to run @p delay picoseconds from now. */
    EventId
    scheduleIn(Time delay, Callback cb, int priority = 0)
    {
        return schedule(now_ + delay, std::move(cb), priority);
    }

    /**
     * Cancel a pending event. Safe to call with an already-fired or
     * already-cancelled handle (no-op).
     */
    void deschedule(EventId id);

    /** True if no live events remain. */
    bool empty() const { return liveEvents_ == 0; }

    /** Number of live (not cancelled, not fired) events. */
    std::size_t size() const { return liveEvents_; }

    /**
     * Timestamp of the next live event, or ~Time{0} when empty.
     * Discards cancelled entries encountered at the head.
     */
    Time nextEventTime();

    /**
     * Run the single next event, if any.
     * @return true if an event was executed.
     */
    bool runOne();

    /** Run all events with timestamp <= @p t, then set now() = t. */
    void runUntil(Time t);

    /**
     * Run events until the queue drains or @p horizon is exceeded.
     * @return simulated time at exit.
     */
    Time runToCompletion(Time horizon = ~Time{0});

    /** Total events executed (for stats/tests). */
    std::uint64_t executedEvents() const { return executed_; }

  private:
    struct Entry {
        Time when;
        int priority;
        EventId id;
        Callback cb;
        bool cancelled = false;
    };

    struct EntryOrder {
        bool
        operator()(const std::shared_ptr<Entry> &a,
                   const std::shared_ptr<Entry> &b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            if (a->priority != b->priority)
                return a->priority > b->priority;
            return a->id > b->id;
        }
    };

    Time now_ = 0;
    EventId nextId_ = 1;
    std::size_t liveEvents_ = 0;
    std::uint64_t executed_ = 0;
    std::priority_queue<std::shared_ptr<Entry>,
                        std::vector<std::shared_ptr<Entry>>,
                        EntryOrder> queue_;
    std::unordered_map<EventId, std::weak_ptr<Entry>> byId_;
};

} // namespace ich

#endif // ICH_COMMON_EVENT_QUEUE_HH
