/**
 * @file
 * Plain-text table / CSV emitters used by the bench harnesses to print the
 * rows and series the paper's tables and figures report.
 */

#ifndef ICH_COMMON_TABLE_HH
#define ICH_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace ich
{

/**
 * Column-aligned text table. Build with a header row, append data rows,
 * render with toString().
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append one row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format doubles with the given precision. */
    static std::string fmt(double v, int precision = 2);

    std::string toString() const;
    std::string toCsv() const;

    std::size_t rows() const { return rows_.size(); }
    std::size_t columns() const { return header_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace ich

#endif // ICH_COMMON_TABLE_HH
