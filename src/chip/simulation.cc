#include "chip/simulation.hh"

namespace ich
{

Simulation::Simulation(const ChipConfig &cfg, std::uint64_t seed)
    : rng_(seed)
{
    chip_ = std::make_unique<Chip>(eq_, rng_, cfg);
}

bool
Simulation::allProgramsDone() const
{
    for (int c = 0; c < chip_->coreCount(); ++c) {
        const Core &core = chip_->core(c);
        for (int t = 0; t < core.numThreads(); ++t) {
            const HwThread &thr = core.thread(t);
            if (thr.started() && !thr.done())
                return false;
        }
    }
    return true;
}

Time
Simulation::run(Time horizon)
{
    while (!allProgramsDone()) {
        Time next = eq_.nextEventTime();
        if (next > horizon) {
            eq_.runUntil(horizon);
            break;
        }
        if (!eq_.runOne())
            break;
    }
    return eq_.now();
}

void
Simulation::runFor(Time duration)
{
    eq_.runUntil(eq_.now() + duration);
}

} // namespace ich
