#include "chip/simulation.hh"

namespace ich
{

Simulation::Simulation(const ChipConfig &cfg, std::uint64_t seed)
    : rng_(seed)
{
    chip_ = std::make_unique<Chip>(eq_, rng_, cfg);
}

bool
Simulation::allProgramsDone() const
{
    for (int c = 0; c < chip_->coreCount(); ++c) {
        const Core &core = chip_->core(c);
        for (int t = 0; t < core.numThreads(); ++t) {
            const HwThread &thr = core.thread(t);
            if (thr.started() && !thr.done())
                return false;
        }
    }
    return true;
}

Time
Simulation::run(Time horizon)
{
    // Fast-forward mode interposes the inline tick pump before each
    // dispatch: runs of due Ticker group fires execute in place
    // (bit-identically to the stepped pops) and only non-tick events —
    // the ones that can complete a program or change discrete PDN/PMU
    // state — go through runOne(). Member ticks never flip a thread's
    // done() (they throttle/re-rate but cannot retire a program), so
    // skipping the per-event completion scan across a pumped span
    // cannot move the stop point.
    while (!allProgramsDone()) {
        if (!legacyPdnEvents_)
            chip_->planner().advance(horizon);
        Time next = eq_.nextEventTime();
        if (next > horizon) {
            eq_.runUntil(horizon);
            break;
        }
        if (!eq_.runOne())
            break;
    }
    return eq_.now();
}

void
Simulation::runFor(Time duration)
{
    Time t = eq_.now() + duration;
    if (!legacyPdnEvents_) {
        for (;;) {
            chip_->planner().advance(t);
            if (eq_.nextEventTime() > t)
                break;
            if (!eq_.runOne())
                break;
        }
    }
    eq_.runUntil(t);
}

} // namespace ich
