/**
 * @file
 * Chip: the full SoC model of Figure 1 — CPU cores with SMT threads and
 * throttle units, shared PLL clock domain, central PMU, VR/SVID power
 * delivery, and a thermal node. Implements ChipApi (services for the
 * execution model) and PmuHooks (services for the PMU).
 */

#ifndef ICH_CHIP_CHIP_HH
#define ICH_CHIP_CHIP_HH

#include <memory>
#include <string>
#include <vector>

#include "chip/horizon.hh"
#include "common/event_queue.hh"
#include "common/rng.hh"
#include "common/ticker.hh"
#include "common/types.hh"
#include "cpu/chip_api.hh"
#include "cpu/core.hh"
#include "pmu/central_pmu.hh"
#include "state/fwd.hh"
#include "thermal/thermal_model.hh"

namespace ich
{

/** Full chip configuration. */
struct ChipConfig {
    std::string name = "generic";
    int numCores = 2;
    CoreConfig core;
    PmuConfig pmu;
    ThermalConfig thermal;
    /** Invariant TSC rate (base clock), GHz. */
    double tscGhz = 2.2;
};

/** The processor. */
class Chip : public ChipApi, public PmuHooks
{
  public:
    Chip(EventQueue &eq, Rng &rng, const ChipConfig &cfg);
    ~Chip();

    Chip(const Chip &) = delete;
    Chip &operator=(const Chip &) = delete;

    /** @name Structure */
    ///@{
    int coreCount() const { return static_cast<int>(cores_.size()); }
    Core &core(CoreId i) { return *cores_.at(i); }
    const Core &core(CoreId i) const { return *cores_.at(i); }
    CentralPmu &pmu() { return *pmu_; }
    const CentralPmu &pmu() const { return *pmu_; }
    /** Shared tick scheduler for all clocked components. */
    Ticker &ticker() { return ticker_; }
    const Ticker &ticker() const { return ticker_; }
    ThermalModel &thermal() { return thermal_; }
    /** Fast-forward horizon planner (inline tick pump + diagnostics). */
    HorizonPlanner &planner() { return *planner_; }
    const HorizonPlanner &planner() const { return *planner_; }
    /**
     * Earliest committed discrete state change at or after now (armed
     * Ticker groups + PMU/PDN deadlines); kTimeNever when quiescent.
     */
    Time nextInterestingTime() const
    {
        return planner_->nextInterestingTime();
    }
    const ChipConfig &config() const { return cfg_; }
    ///@}

    /** @name ChipApi */
    ///@{
    EventQueue &eventQueue() override { return eq_; }
    Rng &rng() override { return rng_; }
    double freqGhz() const override { return pmu_->freqGhz(); }
    Cycles tscNow() const override;
    Cycles tscAt(Time t) const override;
    double tscGhz() const override { return cfg_.tscGhz; }
    Time tscToTime(Cycles tsc) const override;
    void phiStarted(CoreId core, int smt, InstClass cls) override;
    void kernelEnded(CoreId core, int smt, InstClass cls) override;
    void activityChanged() override;
    ///@}

    /** @name PmuHooks */
    ///@{
    int numCores() const override { return cfg_.numCores; }
    void assertCoreThrottle(CoreId core, ThrottleReason reason,
                            int initiator) override;
    void deassertCoreThrottle(CoreId core, ThrottleReason reason) override;
    std::vector<CoreActivity> coreActivity() const override;
    void beforeFreqChange() override;
    ///@}

    /** @name Convenience measurement points (the "sense resistors") */
    ///@{
    double vccVolts() const { return pmu_->volts(); }
    double iccAmps() const { return pmu_->iccAmps(); }
    double powerWatts() const { return pmu_->powerWatts(); }
    /** Junction temperature, advancing the thermal state to now. */
    double tjCelsius();
    ///@}

    /** Snapshot hooks (thermal node + cores; PMU has its own section). */
    void saveState(state::SaveContext &ctx) const;
    void restoreState(state::SectionReader &r, state::RestoreContext &ctx);

  private:
    /** Periodic Tj integration (thermal.sampleInterval > 0). */
    struct ThermalTick final : Clocked {
        Chip *chip = nullptr;
        void
        tick(Time now) override
        {
            chip->thermal_.update(now, chip->powerWatts());
        }
        const char *tickName() const override { return "thermal"; }
    };

    EventQueue &eq_;
    Rng &rng_;
    ChipConfig cfg_;
    Ticker ticker_; ///< declared before members that deregister in dtors
    std::vector<std::unique_ptr<Core>> cores_;
    std::unique_ptr<CentralPmu> pmu_;
    std::unique_ptr<HorizonPlanner> planner_;
    ThermalModel thermal_;
    ThermalTick thermalTick_;
};

} // namespace ich

#endif // ICH_CHIP_CHIP_HH
