/**
 * @file
 * Chip presets for the three processors the paper characterizes (§5.1):
 *
 *  - Haswell Core i7-4770K: 4C/8T, FIVR (fast integrated VR, so shorter
 *    throttling periods, Fig. 8a), no AVX power gate (introduced in
 *    Skylake), no AVX-512.
 *  - Coffee Lake Core i7-9700K: 8C/8T desktop, MBVR, AVX power gate,
 *    no SMT, no AVX-512. Vccmax = 1.27 V, Iccmax = 100 A (Fig. 7a).
 *  - Cannon Lake Core i3-8121U: 2C/4T mobile, MBVR, AVX power gate,
 *    AVX-512. Vccmax = 1.15 V, Iccmax = 29 A (Fig. 7a/b).
 *
 * ΔCdyn / RLL / V-F parameters are calibrated so the guardband steps match
 * Fig. 6 (~8 mV per AVX2 core at 2 GHz) and the limit crossovers match
 * Fig. 7a; see DESIGN.md §4.
 */

#ifndef ICH_CHIP_PRESETS_HH
#define ICH_CHIP_PRESETS_HH

#include "chip/chip.hh"

namespace ich
{
namespace presets
{

ChipConfig haswell();
ChipConfig coffeeLake();
ChipConfig cannonLake();

/**
 * Server-class part (paper §6.4: client and server cores share the same
 * microarchitecture — a Skylake-SP-like 16C/32T Xeon with FIVR and
 * AVX-512). All three channels work unchanged on it.
 */
ChipConfig skylakeServer();

/**
 * AMD Zen-like part (paper §7 "IChannels on other Microarchitectures"):
 * recent AMD processors use per-core LDO regulators [7, 9, 93, 94, 96,
 * 103], so naively porting IChannels to them does not work — the
 * cross-core channel has no shared-rail serialization to exploit and the
 * sub-microsecond LDO transitions bury the thread/SMT levels in jitter.
 */
ChipConfig zenLike();

/** True if the preset's ISA includes AVX-512 (512b classes). */
bool hasAvx512(const ChipConfig &cfg);

} // namespace presets
} // namespace ich

#endif // ICH_CHIP_PRESETS_HH
