/**
 * @file
 * Simulation: one experiment instance bundling the event queue, RNG, and
 * chip. Each covert-channel run / characterization trial constructs a
 * fresh Simulation so experiments are independent and reproducible from
 * their seed.
 */

#ifndef ICH_CHIP_SIMULATION_HH
#define ICH_CHIP_SIMULATION_HH

#include <memory>

#include "chip/chip.hh"
#include "common/event_queue.hh"
#include "common/rng.hh"

namespace ich
{

/** Self-contained simulation instance. */
class Simulation
{
  public:
    explicit Simulation(const ChipConfig &cfg, std::uint64_t seed = 1);

    EventQueue &eq() { return eq_; }
    const EventQueue &eq() const { return eq_; }
    Rng &rng() { return rng_; }
    Chip &chip() { return *chip_; }
    const Chip &chip() const { return *chip_; }

    /**
     * Run until all installed thread programs complete or @p horizon is
     * reached. @return simulated end time.
     */
    Time run(Time horizon = fromSeconds(10.0));

    /** Run for a fixed additional duration. */
    void runFor(Time duration);

    /**
     * Oracle switch: true restores the fully stepped dispatch path —
     * every Ticker rate-group fire popped through the event queue —
     * instead of the chip's fast-forward pump (the default). The two
     * paths are bit-identical: same member ticks at the same
     * timestamps, same event interleavings, same executedEvents(),
     * same snapshot bytes. The stepped path survives as the
     * byte-identity oracle, same discipline as
     * HwThread::setLegacyChunkEvents().
     */
    void setLegacyPdnEvents(bool legacy) { legacyPdnEvents_ = legacy; }
    bool legacyPdnEvents() const { return legacyPdnEvents_; }

  private:
    EventQueue eq_;
    Rng rng_;
    std::unique_ptr<Chip> chip_;
    bool legacyPdnEvents_ = false;

    bool allProgramsDone() const;
};

} // namespace ich

#endif // ICH_CHIP_SIMULATION_HH
