/**
 * @file
 * Simulation: one experiment instance bundling the event queue, RNG, and
 * chip. Each covert-channel run / characterization trial constructs a
 * fresh Simulation so experiments are independent and reproducible from
 * their seed.
 */

#ifndef ICH_CHIP_SIMULATION_HH
#define ICH_CHIP_SIMULATION_HH

#include <memory>

#include "chip/chip.hh"
#include "common/event_queue.hh"
#include "common/rng.hh"

namespace ich
{

/** Self-contained simulation instance. */
class Simulation
{
  public:
    explicit Simulation(const ChipConfig &cfg, std::uint64_t seed = 1);

    EventQueue &eq() { return eq_; }
    const EventQueue &eq() const { return eq_; }
    Rng &rng() { return rng_; }
    Chip &chip() { return *chip_; }
    const Chip &chip() const { return *chip_; }

    /**
     * Run until all installed thread programs complete or @p horizon is
     * reached. @return simulated end time.
     */
    Time run(Time horizon = fromSeconds(10.0));

    /** Run for a fixed additional duration. */
    void runFor(Time duration);

  private:
    EventQueue eq_;
    Rng rng_;
    std::unique_ptr<Chip> chip_;

    bool allProgramsDone() const;
};

} // namespace ich

#endif // ICH_CHIP_SIMULATION_HH
