/**
 * @file
 * Chip-level fast-forward horizon planner.
 *
 * The surviving hot events after the chunk-record and rate-group
 * optimizations are the periodic PMU/PDN housekeeping mix: governor and
 * RAPL evaluations, thermal samples, DAQ/detector probes — all Ticker
 * rate-group fires whose member work is closed-form per tick (the
 * thermal node integrates its RC decay exactly, RAPL energy accrues
 * lazily, governor decisions are pure functions of accrued state). The
 * planner drives Ticker::fastForward(), which fires due groups in place
 * — bit-identically to the popped dispatch: same members, same
 * timestamps, same event interleavings, same executed-event count — at
 * a fraction of the per-event cost (no heap pop/push, no slot recycle,
 * no callback construction, no per-event program-completion scan).
 *
 * The pump stops at the first non-tick event at the queue head: a VR
 * ramp completion, an SVID transaction, a P-state transition, a
 * guardband decay check, a governor-write apply, or a thread chunk
 * boundary. Those run through the normal Simulation dispatch loop, so
 * a skip is *suppressed* exactly when a discrete state change is due —
 * correctness never depends on the planner predicting deadlines.
 *
 * nextInterestingTime() is the matching introspection surface: the
 * earliest discrete state change any component has committed to,
 * aggregated from the per-component deadline queries (VoltageRegulator
 * ramp completion, Svid transaction completion, CentralPmu P-state /
 * upclock / decay deadlines) and the earliest armed Ticker rate group.
 * Tests and guardrails use it to prove the pump never fires past a
 * component deadline; the pump itself never reads it.
 */

#ifndef ICH_CHIP_HORIZON_HH
#define ICH_CHIP_HORIZON_HH

#include <cstdint>

#include "common/ticker.hh"
#include "common/types.hh"

namespace ich
{

class CentralPmu;

/** Drives the Ticker's inline fast-forward pump and aggregates the
 *  chip-wide "next interesting time". Owned by Chip. */
class HorizonPlanner
{
  public:
    HorizonPlanner(Ticker &ticker, CentralPmu &pmu)
        : ticker_(ticker), pmu_(pmu)
    {
    }

    HorizonPlanner(const HorizonPlanner &) = delete;
    HorizonPlanner &operator=(const HorizonPlanner &) = delete;

    /**
     * Fire due tick groups inline up to @p until (see
     * Ticker::fastForward). @return fires performed; 0 means the head
     * event is not a due tick — a suppressed skip.
     */
    std::uint64_t advance(Time until);

    /**
     * Earliest committed discrete state change at or after now: min of
     * the earliest armed Ticker group and the PMU/PDN deadlines.
     * kTimeNever when the chip is fully quiescent.
     */
    Time nextInterestingTime() const;

    /** @name Diagnostics (not serialized — the fast-forward and legacy
     *  stepped paths must snapshot identically) */
    ///@{
    /** advance() calls that fired at least one group. */
    std::uint64_t spans() const { return spans_; }
    /** Total inline group fires. */
    std::uint64_t fires() const { return fires_; }
    /** advance() calls suppressed by a non-tick head event. */
    std::uint64_t suppressions() const { return suppressions_; }
    ///@}

  private:
    Ticker &ticker_;
    CentralPmu &pmu_;
    std::uint64_t spans_ = 0;
    std::uint64_t fires_ = 0;
    std::uint64_t suppressions_ = 0;
};

} // namespace ich

#endif // ICH_CHIP_HORIZON_HH
