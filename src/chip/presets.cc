#include "chip/presets.hh"

namespace ich
{
namespace presets
{

namespace
{

std::vector<double>
freqBins(double min_ghz, double max_ghz)
{
    std::vector<double> bins;
    for (double f = min_ghz; f <= max_ghz + 1e-9; f += 0.1)
        bins.push_back(f);
    return bins;
}

} // namespace

ChipConfig
cannonLake()
{
    ChipConfig cfg;
    cfg.name = "cannonlake-i3-8121U";
    cfg.numCores = 2;
    cfg.tscGhz = 2.2;

    cfg.core.smtThreads = 2;
    cfg.core.cdynBaseNf = 2.4;
    cfg.core.leakageAmps = 1.0;
    cfg.core.avxGate.present = true;

    cfg.pmu.vf = VfCurve{0.55, 0.10};
    cfg.pmu.rllOhm = 1.9e-3;
    cfg.pmu.limits = ElectricalLimits{1.15, 29.0};
    cfg.pmu.pstate.binsGhz = freqBins(0.8, 3.2);
    cfg.pmu.pstate.minGhz = 0.8;
    cfg.pmu.pstate.licenseMaxGhz = {3.2, 2.6, 1.8};
    cfg.pmu.governor.policy = GovernorPolicy::kUserspace;
    cfg.pmu.governor.userspaceGhz = 2.2;
    cfg.pmu.vr = VrConfig::motherboard();
    cfg.pmu.vr.commandJitter = fromNanoseconds(200);
    cfg.pmu.leakagePerCoreAmps = cfg.core.leakageAmps;
    return cfg;
}

ChipConfig
coffeeLake()
{
    ChipConfig cfg;
    cfg.name = "coffeelake-i7-9700K";
    cfg.numCores = 8;
    cfg.tscGhz = 3.6;

    cfg.core.smtThreads = 1; // i7-9700K has no SMT (§6.1)
    cfg.core.cdynBaseNf = 2.4;
    cfg.core.leakageAmps = 1.0;
    cfg.core.avxGate.present = true;

    cfg.pmu.vf = VfCurve{0.46, 0.16};
    cfg.pmu.rllOhm = 1.9e-3;
    cfg.pmu.limits = ElectricalLimits{1.27, 100.0};
    cfg.pmu.pstate.binsGhz = freqBins(0.8, 4.9);
    cfg.pmu.pstate.minGhz = 0.8;
    cfg.pmu.pstate.licenseMaxGhz = {4.9, 4.3, 4.0};
    cfg.pmu.governor.policy = GovernorPolicy::kUserspace;
    cfg.pmu.governor.userspaceGhz = 3.6;
    cfg.pmu.vr = VrConfig::motherboard();
    cfg.pmu.vr.commandJitter = fromNanoseconds(200);
    cfg.pmu.leakagePerCoreAmps = cfg.core.leakageAmps;
    return cfg;
}

ChipConfig
haswell()
{
    ChipConfig cfg;
    cfg.name = "haswell-i7-4770K";
    cfg.numCores = 4;
    cfg.tscGhz = 3.5;

    cfg.core.smtThreads = 2;
    cfg.core.cdynBaseNf = 2.6;
    cfg.core.leakageAmps = 1.2;
    cfg.core.avxGate.present = false; // AVX PG introduced in Skylake

    cfg.pmu.vf = VfCurve{0.50, 0.12};
    cfg.pmu.rllOhm = 1.9e-3;
    cfg.pmu.limits = ElectricalLimits{1.30, 90.0};
    cfg.pmu.pstate.binsGhz = freqBins(0.8, 3.9);
    cfg.pmu.pstate.minGhz = 0.8;
    cfg.pmu.pstate.licenseMaxGhz = {3.9, 3.7, 3.5};
    cfg.pmu.governor.policy = GovernorPolicy::kUserspace;
    cfg.pmu.governor.userspaceGhz = 3.5;
    cfg.pmu.vr = VrConfig::integrated(); // FIVR
    cfg.pmu.vr.commandJitter = fromNanoseconds(150);
    cfg.pmu.leakagePerCoreAmps = cfg.core.leakageAmps;
    return cfg;
}

ChipConfig
skylakeServer()
{
    ChipConfig cfg;
    cfg.name = "skylake-server-xeon";
    cfg.numCores = 16;
    cfg.tscGhz = 2.1;

    cfg.core.smtThreads = 2;
    cfg.core.cdynBaseNf = 2.8;
    cfg.core.leakageAmps = 1.5;
    cfg.core.avxGate.present = true; // AVX PG since Skylake

    cfg.pmu.vf = VfCurve{0.52, 0.11};
    cfg.pmu.rllOhm = 1.0e-3; // stiffer server PDN
    cfg.pmu.limits = ElectricalLimits{1.25, 400.0};
    cfg.pmu.pstate.binsGhz = freqBins(0.8, 3.7);
    cfg.pmu.pstate.minGhz = 0.8;
    cfg.pmu.pstate.licenseMaxGhz = {3.7, 3.1, 2.5};
    cfg.pmu.governor.policy = GovernorPolicy::kUserspace;
    cfg.pmu.governor.userspaceGhz = 2.1;
    cfg.pmu.vr = VrConfig::integrated(); // FIVR on Skylake-SP
    cfg.pmu.vr.commandJitter = fromNanoseconds(150);
    cfg.pmu.leakagePerCoreAmps = cfg.core.leakageAmps;
    return cfg;
}

ChipConfig
zenLike()
{
    ChipConfig cfg;
    cfg.name = "zen-like-amd";
    cfg.numCores = 8;
    cfg.tscGhz = 3.6;

    cfg.core.smtThreads = 2;
    cfg.core.cdynBaseNf = 2.5;
    cfg.core.leakageAmps = 1.0;
    cfg.core.avxGate.present = true;

    cfg.pmu.vf = VfCurve{0.50, 0.13};
    cfg.pmu.rllOhm = 1.6e-3;
    cfg.pmu.limits = ElectricalLimits{1.30, 140.0};
    cfg.pmu.pstate.binsGhz = freqBins(0.8, 4.4);
    cfg.pmu.pstate.minGhz = 0.8;
    cfg.pmu.pstate.licenseMaxGhz = {4.4, 4.4, 4.4}; // no AVX licenses
    cfg.pmu.governor.policy = GovernorPolicy::kUserspace;
    cfg.pmu.governor.userspaceGhz = 3.6;
    // The defining difference: per-core LDO voltage domains.
    cfg.pmu.perCoreVr = true;
    cfg.pmu.vr = VrConfig::lowDropout();
    cfg.pmu.vr.commandJitter = fromNanoseconds(20);
    cfg.pmu.leakagePerCoreAmps = cfg.core.leakageAmps;
    return cfg;
}

bool
hasAvx512(const ChipConfig &cfg)
{
    return cfg.name.rfind("cannonlake", 0) == 0 ||
           cfg.name.rfind("skylake-server", 0) == 0;
}

} // namespace presets
} // namespace ich
