#include "chip/horizon.hh"

#include <algorithm>

#include "pmu/central_pmu.hh"

namespace ich
{

std::uint64_t
HorizonPlanner::advance(Time until)
{
    std::uint64_t fired = ticker_.fastForward(until);
    fires_ += fired;
    if (fired > 0)
        ++spans_;
    else
        ++suppressions_;
    return fired;
}

Time
HorizonPlanner::nextInterestingTime() const
{
    return std::min(ticker_.nextGroupDue(), pmu_.nextInterestingTime());
}

} // namespace ich
