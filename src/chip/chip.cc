#include "chip/chip.hh"

#include <cmath>

#include "state/snapshot.hh"

namespace ich
{

Chip::Chip(EventQueue &eq, Rng &rng, const ChipConfig &cfg)
    : eq_(eq), rng_(rng), cfg_(cfg), ticker_(eq), thermal_(cfg.thermal)
{
    for (CoreId i = 0; i < cfg_.numCores; ++i)
        cores_.push_back(std::make_unique<Core>(*this, i, cfg_.core));
    pmu_ = std::make_unique<CentralPmu>(eq_, rng_, ticker_, cfg_.pmu,
                                        *this);
    planner_ = std::make_unique<HorizonPlanner>(ticker_, *pmu_);
    thermalTick_.chip = this;
    if (cfg_.thermal.sampleInterval > 0)
        ticker_.add(thermalTick_,
                    TickRate{cfg_.thermal.sampleInterval, 0, 0});
}

Chip::~Chip()
{
    if (cfg_.thermal.sampleInterval > 0)
        ticker_.remove(thermalTick_);
}

Cycles
Chip::tscNow() const
{
    return tscAt(eq_.now());
}

Cycles
Chip::tscAt(Time t) const
{
    return static_cast<Cycles>(
        std::llround(static_cast<double>(t) * cfg_.tscGhz / 1000.0));
}

Time
Chip::tscToTime(Cycles tsc) const
{
    return static_cast<Time>(
        std::llround(static_cast<double>(tsc) * 1000.0 / cfg_.tscGhz));
}

void
Chip::phiStarted(CoreId core, int smt, InstClass cls)
{
    pmu_->onPhiStart(core, smt, cls);
}

void
Chip::kernelEnded(CoreId core, int smt, InstClass cls)
{
    pmu_->onKernelEnd(core, smt, cls);
}

void
Chip::activityChanged()
{
    pmu_->onActivityChanged();
}

void
Chip::assertCoreThrottle(CoreId core, ThrottleReason reason, int initiator)
{
    Core &c = *cores_.at(core);
    c.touch();
    c.throttle().assertThrottle(reason, initiator);
    c.refresh();
}

void
Chip::deassertCoreThrottle(CoreId core, ThrottleReason reason)
{
    Core &c = *cores_.at(core);
    c.touch();
    c.throttle().deassertThrottle(reason);
    c.refresh();
}

void
Chip::beforeFreqChange()
{
    // Deferred chunk records still pending in any thread are priced at
    // the rate that was in force when they were crossed; materialize
    // them before the PLL moves.
    for (auto &core : cores_)
        core->materializePending();
}

std::vector<CoreActivity>
Chip::coreActivity() const
{
    std::vector<CoreActivity> act(cores_.size());
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        act[i].active = cores_[i]->anyThreadActive();
        act[i].cdynNf = cores_[i]->cdynActiveNf();
        act[i].gbLevel = 0; // PMU fills granted/pending levels
        act[i].activeGbLevel = cores_[i]->activeGbLevelNow();
    }
    return act;
}

double
Chip::tjCelsius()
{
    return thermal_.update(eq_.now(), powerWatts());
}

void
Chip::saveState(state::SaveContext &ctx) const
{
    thermal_.saveState(ctx);
    for (const auto &core : cores_)
        core->saveState(ctx);
}

void
Chip::restoreState(state::SectionReader &r, state::RestoreContext &ctx)
{
    thermal_.restoreState(r);
    for (auto &core : cores_)
        core->restoreState(r, ctx);
}

} // namespace ich
