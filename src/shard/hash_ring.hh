/**
 * @file
 * Maglev-style consistent hashing for warm-snapshot locality.
 *
 * The coordinator pins every warmup key to one worker so each unique
 * warm state is simulated (and cached) exactly once across the shard
 * pool. The Maglev construction (Eisenbud et al., NSDI'16) fills a
 * fixed-size lookup table from per-backend permutations, giving two
 * properties the naive `hash % N` lacks:
 *
 *  - balance: every enabled worker owns ~tableSize/N slots (within a
 *    few percent), so key ownership spreads evenly even for small N;
 *  - minimal disruption: disabling one worker (a crashed shard past
 *    its respawn budget) reassigns that worker's slots and only a few
 *    percent of everyone else's — the other workers keep their warm
 *    caches hot.
 */

#ifndef ICH_SHARD_HASH_RING_HH
#define ICH_SHARD_HASH_RING_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ich
{
namespace shard
{

class HashRing
{
  public:
    /**
     * @p backends workers, table of @p table_size slots (prime, and
     * well above the worker count, for balance; 307 comfortably serves
     * the <= 64-worker pools a single coordinator drives).
     */
    explicit HashRing(std::size_t backends, std::size_t table_size = 307);

    /** Worker owning @p key; throws std::logic_error when none enabled. */
    std::size_t lookup(const std::string &key) const;

    /** Permanently remove a worker and rebuild the table. */
    void disable(std::size_t backend);

    bool enabled(std::size_t backend) const { return enabled_[backend]; }
    std::size_t backendCount() const { return enabled_.size(); }
    std::size_t enabledCount() const;
    const std::vector<std::uint32_t> &table() const { return table_; }

  private:
    std::vector<bool> enabled_;
    std::vector<std::uint32_t> table_; ///< slot -> backend index

    void build();
};

} // namespace shard
} // namespace ich

#endif // ICH_SHARD_HASH_RING_HH
