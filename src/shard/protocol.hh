/**
 * @file
 * Wire protocol between the shard coordinator and its worker
 * processes: length-prefixed, CRC-framed messages over pipes.
 *
 * Frame layout (all integers little-endian, widths explicit):
 *
 *   u32 magic "ICHW" | u32 type | u64 payloadLen | u32 crc32(payload)
 *   payload bytes
 *
 * The CRC covers the payload, so a truncated or garbled frame surfaces
 * as a clean ProtocolError before any message field is interpreted —
 * the same loud-failure discipline as state::ArchiveReader. Payloads
 * are encoded with WireWriter/WireReader: explicit widths, raw
 * IEEE-754 bits for doubles, bounds-checked reads. A sharded sweep's
 * metric values therefore round-trip bit-exactly, which is what makes
 * `--shard N` byte-identical to an in-process run.
 *
 * Message vocabulary (coordinator = C, worker = W):
 *
 *   kHello       C->W  sweep identity: scenario, seed/trials overrides,
 *                      point count, grid fingerprint
 *   kHelloAck    W->C  worker pid + its own grid fingerprint (must match)
 *   kAssign      C->W  a batch of work units: grid-point indices (all
 *                      trials each); cheap points pack several per
 *                      frame so framing + durability amortize
 *   kSnapshotPut C->W  pre-seed the worker's warm cache for a key
 *   kSnapshotData W->C a warm snapshot the worker just computed
 *   kResult      W->C  completed point: per-trial seeds + metric bits
 *   kHeartbeat   W->C  liveness + which unit is starting
 *   kShutdown    C->W  clean exit request
 *   kWorkerError W->C  fatal worker-side failure (trial threw, grid
 *                      mismatch); the coordinator aborts the sweep
 */

#ifndef ICH_SHARD_PROTOCOL_HH
#define ICH_SHARD_PROTOCOL_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/aggregate.hh"

namespace ich
{
namespace shard
{

/** Any framing/encoding problem: EOF, bad magic, CRC, truncation. */
class ProtocolError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

using Buffer = std::vector<std::uint8_t>;

/** "ICHW" */
constexpr std::uint32_t kFrameMagic = 0x57484349u;
constexpr std::uint32_t kProtocolVersion = 1;
/** Sanity bound on payloadLen: rejects garbage headers loudly. */
constexpr std::uint64_t kMaxFrameBytes = 1ull << 30;
constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 8 + 4;

enum class MsgType : std::uint32_t {
    kHello = 1,
    kHelloAck = 2,
    kAssign = 3,
    kSnapshotPut = 4,
    kSnapshotData = 5,
    kResult = 6,
    kHeartbeat = 7,
    kShutdown = 8,
    kWorkerError = 9,
};

/** Human-readable message-type name (for errors and logs). */
const char *msgTypeName(MsgType t);

struct Frame {
    MsgType type = MsgType::kShutdown;
    Buffer payload;
};

/** Serialize a frame (header + payload) into a byte vector. */
Buffer encodeFrame(MsgType type, const Buffer &payload);

/**
 * Blocking, EINTR-safe frame write to @p fd. Throws ProtocolError when
 * the peer is gone (EPIPE) or the write fails.
 */
void writeFrame(int fd, MsgType type, const Buffer &payload);

/**
 * Blocking, EINTR-safe frame read from @p fd. Throws ProtocolError on
 * EOF, bad magic, oversized length, or CRC mismatch.
 */
Frame readFrame(int fd);

/**
 * Incremental frame decoder for the coordinator's nonblocking reads:
 * feed() whatever bytes poll() surfaced, then drain complete frames
 * with next(). Garbage in the stream throws ProtocolError exactly as
 * readFrame would.
 */
class FrameDecoder
{
  public:
    void feed(const std::uint8_t *data, std::size_t size);
    /** Extract one complete frame; false when more bytes are needed. */
    bool next(Frame &out);

  private:
    Buffer buf_;
    std::size_t pos_ = 0; ///< consumed prefix, compacted lazily
};

/** Append-only payload builder with explicit widths. */
class WireWriter
{
  public:
    void putU32(std::uint32_t v);
    void putU64(std::uint64_t v);
    void putI32(std::int32_t v);
    /** Raw IEEE-754 bits: metric values round-trip bit-exactly. */
    void putF64(double v);
    void putString(const std::string &v);
    void putBytes(const Buffer &v);

    Buffer take() { return std::move(buf_); }

  private:
    Buffer buf_;
};

/** Bounds-checked payload cursor; throws ProtocolError on truncation. */
class WireReader
{
  public:
    explicit WireReader(const Buffer &buf) : p_(buf.data()), end_(buf.data() + buf.size()) {}

    std::uint32_t getU32();
    std::uint64_t getU64();
    std::int32_t getI32();
    double getF64();
    std::string getString();
    Buffer getBytes();

    std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }

  private:
    const std::uint8_t *p_;
    const std::uint8_t *end_;

    void need(std::size_t n) const;
};

// --------------------------------------------------- typed messages

/** Sweep identity the worker must reproduce exactly. */
struct HelloMsg {
    std::uint32_t protocolVersion = kProtocolVersion;
    std::string scenario;
    std::uint64_t baseSeed = 0;
    std::int32_t trialsPerPoint = 1;
    std::uint64_t numPoints = 0;
    std::uint64_t gridFp = 0; ///< exp::gridFingerprint of the expansion
};

struct HelloAckMsg {
    std::int32_t pid = 0;
    std::uint64_t gridFp = 0;
};

/**
 * One or more work units for a worker. Batching is a pure framing
 * optimization: the worker runs the points in order and reports one
 * kResult per point, so results, placement, and byte-identity are
 * indistinguishable from the same indices sent one frame each.
 */
struct AssignMsg {
    std::vector<std::uint64_t> pointIndices;
};

/** Warm snapshot keyed by the scenario's warmupKey (either direction). */
struct SnapshotMsg {
    std::string key;
    Buffer bytes; ///< a state::snapshot() archive (self-validating)
};

/** One completed grid point: its trials in trial order. */
struct ResultMsg {
    std::uint64_t pointIndex = 0;
    std::vector<exp::TrialRecord> trials;
};

/** ~0 means "idle"; otherwise the unit the worker is starting. */
struct HeartbeatMsg {
    std::uint64_t pointIndex = ~0ull;
};

struct ErrorMsg {
    std::string message;
};

Buffer encodeHello(const HelloMsg &m);
HelloMsg decodeHello(const Buffer &payload);
Buffer encodeHelloAck(const HelloAckMsg &m);
HelloAckMsg decodeHelloAck(const Buffer &payload);
Buffer encodeAssign(const AssignMsg &m);
AssignMsg decodeAssign(const Buffer &payload);
Buffer encodeSnapshot(const SnapshotMsg &m);
SnapshotMsg decodeSnapshot(const Buffer &payload);
Buffer encodeResult(const ResultMsg &m);
ResultMsg decodeResult(const Buffer &payload);
Buffer encodeHeartbeat(const HeartbeatMsg &m);
HeartbeatMsg decodeHeartbeat(const Buffer &payload);
Buffer encodeError(const ErrorMsg &m);
ErrorMsg decodeError(const Buffer &payload);

} // namespace shard
} // namespace ich

#endif // ICH_SHARD_PROTOCOL_HH
