#include "shard/protocol.hh"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "state/archive.hh" // state::crc32

namespace ich
{
namespace shard
{

namespace
{

void
push32(Buffer &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
push64(Buffer &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
peek32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
peek64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

/**
 * Validate a frame header and return its payload length. Every decode
 * path (blocking reads and the incremental decoder) funnels through
 * here so garbage is rejected with one consistent vocabulary.
 */
std::uint64_t
checkHeader(const std::uint8_t *hdr)
{
    if (peek32(hdr) != kFrameMagic)
        throw ProtocolError("shard protocol: bad frame magic "
                            "(stream corrupt or not a shard peer)");
    std::uint64_t len = peek64(hdr + 8);
    if (len > kMaxFrameBytes)
        throw ProtocolError("shard protocol: frame length " +
                            std::to_string(len) +
                            " exceeds the 1 GiB sanity bound "
                            "(garbled header)");
    return len;
}

Frame
finishFrame(const std::uint8_t *hdr, Buffer payload)
{
    std::uint32_t expect_crc = peek32(hdr + 16);
    std::uint32_t got_crc = state::crc32(payload.data(), payload.size());
    if (expect_crc != got_crc)
        throw ProtocolError("shard protocol: frame CRC mismatch "
                            "(truncated or garbled payload)");
    Frame f;
    f.type = static_cast<MsgType>(peek32(hdr + 4));
    f.payload = std::move(payload);
    return f;
}

} // namespace

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::kHello: return "hello";
      case MsgType::kHelloAck: return "hello-ack";
      case MsgType::kAssign: return "assign";
      case MsgType::kSnapshotPut: return "snapshot-put";
      case MsgType::kSnapshotData: return "snapshot-data";
      case MsgType::kResult: return "result";
      case MsgType::kHeartbeat: return "heartbeat";
      case MsgType::kShutdown: return "shutdown";
      case MsgType::kWorkerError: return "worker-error";
    }
    return "unknown";
}

Buffer
encodeFrame(MsgType type, const Buffer &payload)
{
    Buffer out;
    out.reserve(kFrameHeaderBytes + payload.size());
    push32(out, kFrameMagic);
    push32(out, static_cast<std::uint32_t>(type));
    push64(out, payload.size());
    push32(out, state::crc32(payload.data(), payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

void
writeFrame(int fd, MsgType type, const Buffer &payload)
{
    Buffer bytes = encodeFrame(type, payload);
    std::size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw ProtocolError(std::string("shard protocol: write of ") +
                                msgTypeName(type) + " frame failed: " +
                                std::strerror(errno));
        }
        off += static_cast<std::size_t>(n);
    }
}

namespace
{

/** Read exactly @p size bytes; throws on EOF or error. */
void
readExact(int fd, std::uint8_t *out, std::size_t size, const char *what)
{
    std::size_t off = 0;
    while (off < size) {
        ssize_t n = ::read(fd, out + off, size - off);
        if (n == 0)
            throw ProtocolError(std::string("shard protocol: peer closed "
                                            "the pipe mid-") +
                                what + " (truncated frame)");
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw ProtocolError(std::string("shard protocol: read failed "
                                            "(") +
                                std::strerror(errno) + ")");
        }
        off += static_cast<std::size_t>(n);
    }
}

} // namespace

Frame
readFrame(int fd)
{
    std::uint8_t hdr[kFrameHeaderBytes];
    // A clean EOF *before* any header byte is still an error for the
    // blocking reader: callers that treat peer-exit as normal catch
    // ProtocolError at the call site.
    readExact(fd, hdr, sizeof hdr, "header");
    std::uint64_t len = checkHeader(hdr);
    Buffer payload(static_cast<std::size_t>(len));
    if (len > 0)
        readExact(fd, payload.data(), payload.size(), "payload");
    return finishFrame(hdr, std::move(payload));
}

void
FrameDecoder::feed(const std::uint8_t *data, std::size_t size)
{
    buf_.insert(buf_.end(), data, data + size);
}

bool
FrameDecoder::next(Frame &out)
{
    if (buf_.size() - pos_ < kFrameHeaderBytes)
        return false;
    const std::uint8_t *hdr = buf_.data() + pos_;
    std::uint64_t len = checkHeader(hdr);
    if (buf_.size() - pos_ < kFrameHeaderBytes + len)
        return false;
    Buffer payload(hdr + kFrameHeaderBytes,
                   hdr + kFrameHeaderBytes + static_cast<std::size_t>(len));
    out = finishFrame(hdr, std::move(payload));
    pos_ += kFrameHeaderBytes + static_cast<std::size_t>(len);
    // Compact once the consumed prefix dominates, so a long-lived
    // stream doesn't grow without bound.
    if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
        buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(pos_));
        pos_ = 0;
    }
    return true;
}

// ----------------------------------------------------------- wire I/O

void
WireWriter::putU32(std::uint32_t v)
{
    push32(buf_, v);
}

void
WireWriter::putU64(std::uint64_t v)
{
    push64(buf_, v);
}

void
WireWriter::putI32(std::int32_t v)
{
    push32(buf_, static_cast<std::uint32_t>(v));
}

void
WireWriter::putF64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v, "IEEE-754 double expected");
    std::memcpy(&bits, &v, sizeof bits);
    push64(buf_, bits);
}

void
WireWriter::putString(const std::string &v)
{
    push32(buf_, static_cast<std::uint32_t>(v.size()));
    buf_.insert(buf_.end(), v.begin(), v.end());
}

void
WireWriter::putBytes(const Buffer &v)
{
    push64(buf_, v.size());
    buf_.insert(buf_.end(), v.begin(), v.end());
}

void
WireReader::need(std::size_t n) const
{
    if (remaining() < n)
        throw ProtocolError("shard protocol: message payload truncated");
}

std::uint32_t
WireReader::getU32()
{
    need(4);
    std::uint32_t v = peek32(p_);
    p_ += 4;
    return v;
}

std::uint64_t
WireReader::getU64()
{
    need(8);
    std::uint64_t v = peek64(p_);
    p_ += 8;
    return v;
}

std::int32_t
WireReader::getI32()
{
    return static_cast<std::int32_t>(getU32());
}

double
WireReader::getF64()
{
    std::uint64_t bits = getU64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

std::string
WireReader::getString()
{
    std::uint32_t len = getU32();
    need(len);
    std::string s(reinterpret_cast<const char *>(p_), len);
    p_ += len;
    return s;
}

Buffer
WireReader::getBytes()
{
    std::uint64_t len = getU64();
    need(static_cast<std::size_t>(len));
    Buffer b(p_, p_ + static_cast<std::size_t>(len));
    p_ += static_cast<std::size_t>(len);
    return b;
}

// ----------------------------------------------------- typed messages

Buffer
encodeHello(const HelloMsg &m)
{
    WireWriter w;
    w.putU32(m.protocolVersion);
    w.putString(m.scenario);
    w.putU64(m.baseSeed);
    w.putI32(m.trialsPerPoint);
    w.putU64(m.numPoints);
    w.putU64(m.gridFp);
    return w.take();
}

HelloMsg
decodeHello(const Buffer &payload)
{
    WireReader r(payload);
    HelloMsg m;
    m.protocolVersion = r.getU32();
    if (m.protocolVersion != kProtocolVersion)
        throw ProtocolError(
            "shard protocol: version mismatch (peer speaks v" +
            std::to_string(m.protocolVersion) + ", this build v" +
            std::to_string(kProtocolVersion) + ")");
    m.scenario = r.getString();
    m.baseSeed = r.getU64();
    m.trialsPerPoint = r.getI32();
    m.numPoints = r.getU64();
    m.gridFp = r.getU64();
    return m;
}

Buffer
encodeHelloAck(const HelloAckMsg &m)
{
    WireWriter w;
    w.putI32(m.pid);
    w.putU64(m.gridFp);
    return w.take();
}

HelloAckMsg
decodeHelloAck(const Buffer &payload)
{
    WireReader r(payload);
    HelloAckMsg m;
    m.pid = r.getI32();
    m.gridFp = r.getU64();
    return m;
}

Buffer
encodeAssign(const AssignMsg &m)
{
    WireWriter w;
    w.putU32(static_cast<std::uint32_t>(m.pointIndices.size()));
    for (std::uint64_t idx : m.pointIndices)
        w.putU64(idx);
    return w.take();
}

AssignMsg
decodeAssign(const Buffer &payload)
{
    WireReader r(payload);
    AssignMsg m;
    std::uint32_t n = r.getU32();
    m.pointIndices.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
        m.pointIndices.push_back(r.getU64());
    return m;
}

Buffer
encodeSnapshot(const SnapshotMsg &m)
{
    WireWriter w;
    w.putString(m.key);
    w.putBytes(m.bytes);
    return w.take();
}

SnapshotMsg
decodeSnapshot(const Buffer &payload)
{
    WireReader r(payload);
    SnapshotMsg m;
    m.key = r.getString();
    m.bytes = r.getBytes();
    return m;
}

Buffer
encodeResult(const ResultMsg &m)
{
    WireWriter w;
    w.putU64(m.pointIndex);
    w.putU32(static_cast<std::uint32_t>(m.trials.size()));
    for (const exp::TrialRecord &rec : m.trials) {
        w.putI32(rec.trial);
        w.putU64(rec.seed);
        w.putU32(static_cast<std::uint32_t>(rec.metrics.size()));
        for (const auto &metric : rec.metrics) {
            w.putString(metric.first);
            w.putF64(metric.second);
        }
    }
    return w.take();
}

ResultMsg
decodeResult(const Buffer &payload)
{
    WireReader r(payload);
    ResultMsg m;
    m.pointIndex = r.getU64();
    std::uint32_t n_trials = r.getU32();
    m.trials.reserve(n_trials);
    for (std::uint32_t t = 0; t < n_trials; ++t) {
        exp::TrialRecord rec;
        rec.pointIndex = static_cast<std::size_t>(m.pointIndex);
        rec.trial = r.getI32();
        rec.seed = r.getU64();
        std::uint32_t n_metrics = r.getU32();
        for (std::uint32_t i = 0; i < n_metrics; ++i) {
            std::string name = r.getString();
            rec.metrics[name] = r.getF64();
        }
        m.trials.push_back(std::move(rec));
    }
    return m;
}

Buffer
encodeHeartbeat(const HeartbeatMsg &m)
{
    WireWriter w;
    w.putU64(m.pointIndex);
    return w.take();
}

HeartbeatMsg
decodeHeartbeat(const Buffer &payload)
{
    WireReader r(payload);
    HeartbeatMsg m;
    m.pointIndex = r.getU64();
    return m;
}

Buffer
encodeError(const ErrorMsg &m)
{
    WireWriter w;
    w.putString(m.message);
    return w.take();
}

ErrorMsg
decodeError(const Buffer &payload)
{
    WireReader r(payload);
    ErrorMsg m;
    m.message = r.getString();
    return m;
}

} // namespace shard
} // namespace ich
