#include "shard/worker.hh"

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <string>

#include <unistd.h>

#include "exp/colstore.hh"
#include "exp/resume.hh"
#include "fault/fault.hh"
#include "shard/protocol.hh"
#include "state/archive.hh"

namespace ich
{
namespace shard
{

namespace
{

/**
 * Worker-side warm-snapshot cache: memory first, then the scratch
 * directory (so a respawned worker after a crash reuses its
 * predecessor's work), then coordinator pushes, and only then a fresh
 * warmup computation. Freshly computed snapshots are persisted to
 * scratch *and* uploaded so the coordinator can seed other workers.
 */
class WarmCache
{
  public:
    WarmCache(const exp::ScenarioSpec &spec, std::string scratch_dir,
              int out_fd)
        : spec_(spec), scratchDir_(std::move(scratch_dir)),
          outFd_(out_fd)
    {
    }

    void putFromCoordinator(const SnapshotMsg &msg)
    {
        // The payload is a state archive: self-validating. A corrupt
        // push is a coordinator/disk bug — reject loudly rather than
        // silently recomputing what the coordinator believes is cached.
        state::ArchiveReader validate(msg.bytes); // throws ArchiveError
        (void)validate;
        persist(msg.key, msg.bytes);
        cache_[msg.key] = msg.bytes;
    }

    const state::Buffer &get(const exp::ParamPoint &point,
                             const std::string &key)
    {
        auto it = cache_.find(key);
        if (it != cache_.end())
            return it->second;

        // Scratch file left by a previous incarnation of this worker.
        std::string path =
            exp::warmSnapshotPath(scratchDir_, spec_.name, key);
        try {
            state::Buffer cached = state::readFile(path);
            state::ArchiveReader validate(cached); // CRC/version
            (void)validate;
            return cache_.emplace(key, std::move(cached)).first->second;
        } catch (const state::ArchiveError &) {
            // Missing or corrupt: recompute below.
        }

        state::Buffer fresh = spec_.warmup(point);
        persist(key, fresh);
        SnapshotMsg up;
        up.key = key;
        up.bytes = fresh;
        writeFrame(outFd_, MsgType::kSnapshotData, encodeSnapshot(up));
        return cache_.emplace(key, std::move(fresh)).first->second;
    }

  private:
    const exp::ScenarioSpec &spec_;
    std::string scratchDir_;
    int outFd_;
    std::map<std::string, state::Buffer> cache_;

    void persist(const std::string &key, const state::Buffer &bytes)
    {
        std::error_code ec;
        std::filesystem::create_directories(scratchDir_, ec);
        try {
            state::atomicWriteFile(
                exp::warmSnapshotPath(scratchDir_, spec_.name, key),
                bytes);
        } catch (const state::ArchiveError &e) {
            // The scratch cache is an optimization; losing it costs a
            // recompute after a crash, never correctness.
            std::fprintf(stderr,
                         "shard worker: warm-cache write failed: %s\n",
                         e.what());
        }
    }
};

} // namespace

int
runWorker(const exp::ScenarioRegistry &registry, const WorkerConfig &cfg)
{
    auto fatal = [&cfg](const std::string &msg) -> int {
        ErrorMsg err;
        err.message = msg;
        try {
            writeFrame(cfg.outFd, MsgType::kWorkerError,
                       encodeError(err));
        } catch (const ProtocolError &) {
            // Coordinator already gone; stderr is all that's left.
        }
        std::fprintf(stderr, "shard worker: %s\n", msg.c_str());
        return 3;
    };

    try {
        if (!cfg.faultSpec.empty())
            fault::arm(fault::parsePlan(cfg.faultSpec));

        Frame hello_frame = readFrame(cfg.inFd);
        if (hello_frame.type != MsgType::kHello)
            return fatal(std::string("expected hello, got ") +
                         msgTypeName(hello_frame.type));
        HelloMsg hello = decodeHello(hello_frame.payload);

        const exp::ScenarioSpec *spec = registry.find(hello.scenario);
        if (!spec)
            return fatal("scenario '" + hello.scenario +
                         "' not in this binary's registry");
        if (!spec->run)
            return fatal("scenario '" + hello.scenario +
                         "' has no trial function");

        // Re-expand the grid locally and prove it is the same sweep the
        // coordinator partitioned — a drifted binary fails loudly here
        // instead of producing silently different bytes.
        const std::uint64_t base_seed = hello.baseSeed;
        const int trials_per_point = hello.trialsPerPoint;
        if (trials_per_point < 1)
            return fatal("coordinator sent trials_per_point < 1");
        exp::SweepMeta meta;
        meta.scenario = hello.scenario;
        meta.baseSeed = base_seed;
        meta.trialsPerPoint = trials_per_point;
        meta.points = expandPoints(*spec);
        meta.gridFp = exp::gridFingerprint(meta.points);
        const std::vector<exp::ParamPoint> &points = meta.points;
        if (points.size() != hello.numPoints ||
            meta.gridFp != hello.gridFp)
            return fatal(
                "grid mismatch: this binary expands '" + hello.scenario +
                "' to " + std::to_string(points.size()) + " points (fp " +
                std::to_string(meta.gridFp) + "), coordinator has " +
                std::to_string(hello.numPoints) + " (fp " +
                std::to_string(hello.gridFp) +
                ") — rebuild or matching flags needed");
        const std::uint64_t grid_fp = meta.gridFp;

        HelloAckMsg ack;
        ack.pid = static_cast<std::int32_t>(::getpid());
        ack.gridFp = grid_fp;
        writeFrame(cfg.outFd, MsgType::kHelloAck, encodeHelloAck(ack));
        fault::procPoint("shard.post-hello");

        WarmCache warm(*spec, cfg.scratchDir, cfg.outFd);

        // Per-worker partial column store: same header as the master
        // so the coordinator can scavenge it back after a crash. A
        // respawned worker adopts its predecessor's file and keeps
        // appending. Batch-durable: one explicit sync() per assignment
        // batch instead of per-point fsyncs, so cheap points packed
        // many to a frame amortize the durability cost; a kill loses
        // at most the unreported batch in flight, which the
        // coordinator reassigns. Never endSweep()'d — a scratch store
        // is partial by contract. Scratch is an optimization, never
        // worth the unit: any write failure warns once and disables
        // crash recovery for this worker.
        exp::ColumnStoreWriter::Options scratch_opts;
        scratch_opts.durable = false;
        exp::ColumnStoreWriter scratch(
            exp::resultStorePath(cfg.scratchDir, hello.scenario),
            scratch_opts);
        bool scratch_ok = true;
        try {
            scratch.beginSweep(meta);
        } catch (const std::exception &e) {
            std::fprintf(stderr,
                         "shard worker: scratch store open failed "
                         "(crash recovery for this worker disabled): "
                         "%s\n",
                         e.what());
            scratch_ok = false;
        }

        int units_started = 0;
        for (;;) {
            Frame frame = readFrame(cfg.inFd);
            switch (frame.type) {
              case MsgType::kShutdown:
                return 0;
              case MsgType::kSnapshotPut:
                warm.putFromCoordinator(decodeSnapshot(frame.payload));
                break;
              case MsgType::kAssign: {
                AssignMsg assign = decodeAssign(frame.payload);
                if (assign.pointIndices.empty())
                    return fatal("empty assignment batch");
                // Durability order matters at batch granularity:
                // every point lands in the scratch store, ONE sync()
                // makes the whole batch fsync-durable, and only then
                // do the result frames go out. A kill before the sync
                // reverts the batch to unreported+unrecovered (it is
                // simply reassigned); a kill after it loses nothing —
                // the coordinator scavenges the store.
                std::vector<ResultMsg> batch_results;
                batch_results.reserve(assign.pointIndices.size());
                for (std::uint64_t unit : assign.pointIndices) {
                    std::size_t point_idx =
                        static_cast<std::size_t>(unit);
                    if (point_idx >= points.size())
                        return fatal("assigned point " +
                                     std::to_string(point_idx) +
                                     " beyond the grid");
                    HeartbeatMsg hb;
                    hb.pointIndex = unit;
                    writeFrame(cfg.outFd, MsgType::kHeartbeat,
                               encodeHeartbeat(hb));
                    // Mid-Assign-batch fault point: occ=K lands the
                    // fault at the Kth point of the sweep, so a batch
                    // can die (or hang) between its points.
                    fault::procPoint("shard.point-start");
                    ++units_started;
                    if (cfg.killAfterUnits > 0 &&
                        units_started >= cfg.killAfterUnits) {
                        // Test hook: die mid-unit, the ugly way, so
                        // the coordinator sees a raw EOF with a unit
                        // in flight.
                        ::raise(SIGKILL);
                    }

                    const exp::ParamPoint &point = points[point_idx];
                    const state::Buffer *snapshot = nullptr;
                    if (spec->warmup) {
                        std::string key = spec->warmupKey
                                              ? spec->warmupKey(point)
                                              : point.toString();
                        snapshot = &warm.get(point, key);
                    }

                    ResultMsg result;
                    result.pointIndex = unit;
                    for (int t = 0; t < trials_per_point; ++t) {
                        std::uint64_t global_idx =
                            static_cast<std::uint64_t>(point_idx) *
                                static_cast<std::uint64_t>(
                                    trials_per_point) +
                            static_cast<std::uint64_t>(t);
                        exp::TrialRecord rec;
                        rec.pointIndex = point_idx;
                        rec.trial = t;
                        rec.seed =
                            exp::deriveTrialSeed(base_seed, global_idx);
                        exp::TrialContext ctx{point, point_idx, t,
                                              rec.seed, snapshot};
                        rec.metrics = spec->run(ctx);
                        result.trials.push_back(std::move(rec));
                    }

                    if (scratch_ok) {
                        try {
                            scratch.acceptPoint(point_idx,
                                                result.trials.data(),
                                                result.trials.size());
                        } catch (const std::exception &e) {
                            std::fprintf(
                                stderr,
                                "shard worker: scratch store write "
                                "failed (crash recovery for this "
                                "worker disabled): %s\n",
                                e.what());
                            scratch_ok = false;
                        }
                    }
                    batch_results.push_back(std::move(result));
                }
                if (scratch_ok) {
                    try {
                        scratch.sync();
                    } catch (const std::exception &e) {
                        std::fprintf(
                            stderr,
                            "shard worker: scratch store sync failed "
                            "(crash recovery for this worker "
                            "disabled): %s\n",
                            e.what());
                        scratch_ok = false;
                    }
                }
                // After-scratch-sync-before-Result: the classic lost
                // window. A crash here loses every result frame of the
                // batch but none of its scratch durability — the
                // coordinator must scavenge the whole batch back.
                fault::procPoint("shard.post-sync");
                for (const ResultMsg &result : batch_results) {
                    std::uint64_t tear = 0;
                    if (fault::procPoint("shard.result-frame", &tear)) {
                        // Torn result frame: write a strict prefix of
                        // the encoded frame and die mid-frame, so the
                        // coordinator's decoder sees a partial frame
                        // followed by EOF.
                        Buffer wire = encodeFrame(
                            MsgType::kResult, encodeResult(result));
                        std::size_t k = wire.size() < 2
                                            ? 0
                                            : 1 + tear % (wire.size() - 1);
                        std::size_t sent = 0;
                        while (sent < k) {
                            ssize_t n = ::write(cfg.outFd,
                                                wire.data() + sent,
                                                k - sent);
                            if (n <= 0)
                                break;
                            sent += static_cast<std::size_t>(n);
                        }
                        ::raise(SIGKILL);
                    }
                    writeFrame(cfg.outFd, MsgType::kResult,
                               encodeResult(result));
                }
                break;
              }
              default:
                return fatal(std::string("unexpected frame: ") +
                             msgTypeName(frame.type));
            }
        }
    } catch (const ProtocolError &e) {
        // Pipe gone: the coordinator exited or was killed. Nothing to
        // report to — leave quietly so a dying sweep doesn't cascade.
        std::fprintf(stderr, "shard worker: %s\n", e.what());
        return 4;
    } catch (const std::exception &e) {
        // Trial function threw (deterministic failure — retrying on
        // another worker cannot help) or a local I/O error. Report and
        // exit; the coordinator aborts the sweep with this message.
        return fatal(e.what());
    }
}

} // namespace shard
} // namespace ich
