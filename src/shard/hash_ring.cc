#include "shard/hash_ring.hh"

#include <stdexcept>

namespace ich
{
namespace shard
{

namespace
{

std::uint64_t
fnv1a(const std::string &s, std::uint64_t h = 1469598103934665603ull)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

/** splitmix64: decorrelates the two per-backend hash streams. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

} // namespace

HashRing::HashRing(std::size_t backends, std::size_t table_size)
    : enabled_(backends, true), table_(table_size, 0)
{
    if (backends == 0)
        throw std::invalid_argument("HashRing: need at least one backend");
    if (table_size < backends)
        throw std::invalid_argument("HashRing: table smaller than the "
                                    "backend count");
    build();
}

void
HashRing::build()
{
    const std::size_t m = table_.size();
    std::size_t n_enabled = enabledCount();
    if (n_enabled == 0)
        throw std::logic_error("HashRing: every backend is disabled");

    // Per-backend permutation parameters: offset walks the table from a
    // backend-specific start, skip (coprime to a prime table size) makes
    // each backend's preference list a full permutation.
    struct Perm {
        std::size_t backend;
        std::size_t offset;
        std::size_t skip;
        std::size_t next = 0;
    };
    std::vector<Perm> perms;
    perms.reserve(n_enabled);
    for (std::size_t b = 0; b < enabled_.size(); ++b) {
        if (!enabled_[b])
            continue;
        std::uint64_t h = fnv1a("shard-worker-" + std::to_string(b));
        perms.push_back({b, static_cast<std::size_t>(h % m),
                         static_cast<std::size_t>(mix(h) % (m - 1)) + 1,
                         0});
    }

    std::fill(table_.begin(), table_.end(),
              static_cast<std::uint32_t>(~0u));
    std::size_t filled = 0;
    while (filled < m) {
        for (Perm &p : perms) {
            // Claim the first unfilled slot on this backend's list.
            std::size_t c;
            do {
                c = (p.offset + p.next * p.skip) % m;
                ++p.next;
            } while (table_[c] != static_cast<std::uint32_t>(~0u));
            table_[c] = static_cast<std::uint32_t>(p.backend);
            if (++filled == m)
                break;
        }
    }
}

std::size_t
HashRing::lookup(const std::string &key) const
{
    return table_[static_cast<std::size_t>(fnv1a(key) % table_.size())];
}

void
HashRing::disable(std::size_t backend)
{
    if (backend >= enabled_.size())
        throw std::out_of_range("HashRing::disable: no such backend");
    if (!enabled_[backend])
        return;
    enabled_[backend] = false;
    build();
}

std::size_t
HashRing::enabledCount() const
{
    std::size_t n = 0;
    for (bool e : enabled_)
        n += e ? 1 : 0;
    return n;
}

} // namespace shard
} // namespace ich
