/**
 * @file
 * Shard worker: the `--shard-worker` mode of every harness binary.
 *
 * A worker is a fork/exec'd copy of the harness itself, speaking the
 * shard protocol over two inherited pipe fds. It looks the scenario up
 * in the binary's own registry, re-expands the grid, verifies the
 * expansion fingerprint against the coordinator's, and then runs
 * assigned grid points with exactly the SweepRunner trial contract:
 * the same deriveTrialSeed(base, global_index) seeds, the same
 * TrialContext, the same warm-snapshot forking. Results go back as
 * raw IEEE-754 metric bits, so a sharded sweep is byte-identical to a
 * serial one.
 *
 * Crash durability: after every completed point the worker appends the
 * point to a per-worker manifest in its scratch directory (the
 * standard --resume format, written atomically and fsync'd) *before*
 * sending the result frame. If the worker is killed between the two,
 * the coordinator recovers the point from the scratch manifest instead
 * of re-running it.
 */

#ifndef ICH_SHARD_WORKER_HH
#define ICH_SHARD_WORKER_HH

#include <string>

#include "exp/scenario.hh"

namespace ich
{
namespace shard
{

/** Everything `--shard-worker` mode needs from the command line. */
struct WorkerConfig {
    int inFd = -1;  ///< frames from the coordinator
    int outFd = -1; ///< frames to the coordinator
    std::string scratchDir; ///< per-worker snapshot cache + manifest
    /**
     * Failure-injection hook for the kill -9 tests: raise(SIGKILL)
     * while starting the Nth assigned unit (1-based; <= 0: disabled).
     */
    int killAfterUnits = 0;
    /**
     * Failure-injection hook for the torture harness: a fault::Plan
     * spec (fault/fault.hh grammar) armed at worker start. Scripts
     * crash/hang/slow/torn faults at the named protocol points
     * (shard.post-hello, shard.point-start, shard.post-sync,
     * shard.result-frame) and at the worker's I/O sites (scratch
     * store writes). Empty: disabled.
     */
    std::string faultSpec;
};

/**
 * Run the worker loop until the coordinator sends kShutdown (exit 0),
 * the pipe closes (exit 4 — the coordinator died, nothing to report
 * to), or a fatal error was reported upstream (exit 3).
 */
int runWorker(const exp::ScenarioRegistry &registry,
              const WorkerConfig &cfg);

} // namespace shard
} // namespace ich

#endif // ICH_SHARD_WORKER_HH
