#include "shard/coordinator.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "exp/colstore.hh"
#include "exp/resume.hh"
#include "shard/hash_ring.hh"
#include "shard/protocol.hh"
#include "state/archive.hh"

namespace ich
{
namespace shard
{

namespace
{

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

/** Adaptive batching targets ~this much measured work per kAssign. */
constexpr double kTargetAssignMs = 4.0;
/** Adaptive batch ceiling (fixed assignBatch > 0 is uncapped). */
constexpr std::size_t kMaxAdaptiveBatch = 16;

/** Unrecoverable sweep failure (carries the loud report). */
struct AbortError {
    std::string message;
};

struct Slot {
    pid_t pid = -1;
    int rfd = -1; ///< worker -> coordinator (nonblocking)
    int wfd = -1; ///< coordinator -> worker (nonblocking)
    FrameDecoder decoder;
    Buffer outbox;
    std::size_t outPos = 0;
    std::deque<std::size_t> queue;  ///< pinned units not yet sent
    std::set<std::size_t> inflight; ///< sent, not yet completed
    /** Heartbeat arrival per in-flight unit (adaptive batch sizing). */
    std::map<std::uint64_t, Clock::time_point> startedAt;
    /** Warm keys this slot holds (scratch persists across respawns). */
    std::set<std::string> keysHeld;
    int spawns = 0;
    bool alive = false;
    bool disabled = false;
    Clock::time_point respawnAt{}; ///< valid when !alive && !disabled
    Clock::time_point lastFrame{};
    std::string scratch;
};

void
setFdFlags(int fd)
{
    int fl = ::fcntl(fd, F_GETFL);
    ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
    int fdfl = ::fcntl(fd, F_GETFD);
    ::fcntl(fd, F_SETFD, fdfl | FD_CLOEXEC);
}

/**
 * FNV-1a content fingerprint of one point's trial records (trial,
 * seed, metric names and raw double bits). Duplicate completions are
 * verified against this 64-bit hash instead of retained records — the
 * trade that keeps coordinator memory O(points), not O(records). A
 * disagreeing duplicate always hashes differently; a colliding *and*
 * corrupt duplicate would additionally have to pass the per-frame CRC
 * and the seed-schedule check to slip through.
 */
std::uint64_t
pointHash(const std::vector<exp::TrialRecord> &records)
{
    std::uint64_t h = 1469598103934665603ull;
    auto mix_byte = [&h](std::uint8_t b) {
        h ^= b;
        h *= 1099511628211ull;
    };
    auto mix64 = [&](std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            mix_byte(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    for (const exp::TrialRecord &rec : records) {
        mix64(static_cast<std::uint64_t>(rec.trial));
        mix64(rec.seed);
        mix64(rec.metrics.size());
        for (const auto &kv : rec.metrics) {
            for (unsigned char c : kv.first)
                mix_byte(c);
            mix_byte(0); // name terminator: "ab"+"c" != "a"+"bc"
            std::uint64_t bits;
            std::memcpy(&bits, &kv.second, sizeof bits);
            mix64(bits);
        }
    }
    return h;
}

/** The whole mutable state of one sharded sweep. */
struct Run {
    const exp::ScenarioSpec &spec;
    const ShardOptions &opts; ///< binaryPath already resolved
    exp::SweepMeta meta;
    exp::ResultSink &sink; ///< adopted points stream out through this
    std::size_t trialsPerPoint = 1;

    std::vector<std::string> pointKey; ///< placement key per point
    std::vector<char> completed;
    std::size_t completedPoints = 0;
    std::vector<std::uint64_t> recHash; ///< pointHash per completed point
    std::vector<int> attempts;       ///< deaths while holding the unit
    std::deque<std::size_t> orphans; ///< reassigned units awaiting a home

    exp::ResumeManifest header; ///< sweep identity (points map unused)
    bool resumable = false;
    bool storeMatched = false;
    std::string storePath;
    /** Durable O(1)-per-point checkpoint of the result directory. */
    std::unique_ptr<exp::ColumnStoreWriter> checkpoint;
    bool checkpointOk = false;

    std::map<std::string, state::Buffer> snapCache;

    std::vector<Slot> slots;
    std::string runDir; ///< per-run scratch (removed on clean exit)
    Buffer helloPayload;
    /**
     * EWMA of per-point wall cost in ms, measured heartbeat → result.
     * Batched points' later results include time spent behind their
     * batchmates, which over-estimates cheap points — that only
     * shrinks the next batch, so the feedback is self-limiting.
     */
    double pointCostMs = 0.0;

    Run(const exp::ScenarioSpec &s, const ShardOptions &o,
        exp::ResultSink &k)
        : spec(s), opts(o), sink(k)
    {
    }

    [[noreturn]] void fail(const std::string &msg)
    {
        throw AbortError{failureReport(msg)};
    }

    std::string failureReport(const std::string &msg) const
    {
        std::string report =
            "scenario '" + spec.name + "': sharded sweep failed: " + msg;
        report += "\n  workers:";
        for (std::size_t i = 0; i < slots.size(); ++i) {
            const Slot &s = slots[i];
            report += "\n    w" + std::to_string(i) + ": " +
                      (s.disabled ? "disabled"
                                  : (s.alive ? "alive" : "down")) +
                      ", spawns " + std::to_string(s.spawns) +
                      ", inflight " + std::to_string(s.inflight.size()) +
                      ", queued " + std::to_string(s.queue.size());
        }
        std::size_t remaining = completed.size() - completedPoints;
        report += "\n  points remaining: " + std::to_string(remaining) +
                  " of " + std::to_string(completed.size());
        return report;
    }

    // ------------------------------------------------------ lifecycle

    void spawn(std::size_t idx)
    {
        Slot &s = slots[idx];
        int c2w[2], w2c[2];
        if (::pipe(c2w) != 0 || ::pipe(w2c) != 0)
            fail(std::string("pipe() failed: ") + std::strerror(errno));

        std::vector<std::string> args;
        args.push_back(opts.binaryPath);
        for (const std::string &a : opts.workerArgs)
            args.push_back(a);
        args.push_back("--shard-worker");
        args.push_back("--shard-in");
        args.push_back(std::to_string(c2w[0]));
        args.push_back("--shard-out");
        args.push_back(std::to_string(w2c[1]));
        args.push_back("--shard-scratch");
        args.push_back(s.scratch);
        if (idx == 0 && opts.testKillWorker0AfterUnits > 0) {
            args.push_back("--shard-kill-after");
            args.push_back(std::to_string(opts.testKillWorker0AfterUnits));
        }
        if (idx == 0 && !opts.testWorker0FaultSpec.empty()) {
            args.push_back("--shard-fault");
            args.push_back(opts.testWorker0FaultSpec);
        }
        std::vector<char *> argv;
        argv.reserve(args.size() + 1);
        for (std::string &a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);

        pid_t pid = ::fork();
        if (pid < 0)
            fail(std::string("fork() failed: ") + std::strerror(errno));
        if (pid == 0) {
            // Child. The parent-side pipe ends of every other worker
            // are CLOEXEC, so exec drops them; only this worker's two
            // fds survive — which is what makes a worker's EOF an
            // unambiguous death signal.
            ::close(c2w[1]);
            ::close(w2c[0]);
            ::execv(argv[0], argv.data());
            std::fprintf(stderr, "shard: exec '%s' failed: %s\n",
                         argv[0], std::strerror(errno));
            ::_exit(127);
        }
        ::close(c2w[0]);
        ::close(w2c[1]);
        setFdFlags(c2w[1]);
        setFdFlags(w2c[0]);
        s.pid = pid;
        s.wfd = c2w[1];
        s.rfd = w2c[0];
        s.decoder = FrameDecoder();
        s.outbox.clear();
        s.outPos = 0;
        s.startedAt.clear();
        s.alive = true;
        s.lastFrame = Clock::now();
        ++s.spawns;
        enqueueFrame(s, MsgType::kHello, helloPayload);
    }

    void enqueueFrame(Slot &s, MsgType type, const Buffer &payload)
    {
        Buffer bytes = encodeFrame(type, payload);
        s.outbox.insert(s.outbox.end(), bytes.begin(), bytes.end());
        flushOutbox(s);
    }

    /** Nonblocking drain; EPIPE means the worker died, which is also
     *  visible (and handled) as EOF on the read side. */
    void flushOutbox(Slot &s)
    {
        if (s.wfd < 0)
            return;
        while (s.outPos < s.outbox.size()) {
            ssize_t n = ::write(s.wfd, s.outbox.data() + s.outPos,
                                s.outbox.size() - s.outPos);
            if (n > 0) {
                s.outPos += static_cast<std::size_t>(n);
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            break; // EAGAIN (pipe full) or EPIPE (dead)
        }
        if (s.outPos == s.outbox.size()) {
            s.outbox.clear();
            s.outPos = 0;
        }
    }

    void killWorker(Slot &s)
    {
        if (s.pid > 0)
            ::kill(s.pid, SIGKILL);
    }

    void reapWorker(Slot &s)
    {
        if (s.pid > 0) {
            int status = 0;
            while (::waitpid(s.pid, &status, 0) < 0 && errno == EINTR) {
            }
            s.pid = -1;
        }
        if (s.rfd >= 0) {
            ::close(s.rfd);
            s.rfd = -1;
        }
        if (s.wfd >= 0) {
            ::close(s.wfd);
            s.wfd = -1;
        }
        s.alive = false;
    }

    // ----------------------------------------------------- scheduling

    void sendWarmIfNeeded(Slot &s, std::size_t unit)
    {
        if (!spec.warmup)
            return;
        const std::string &key = pointKey[unit];
        if (s.keysHeld.count(key))
            return;
        auto it = snapCache.find(key);
        if (it != snapCache.end()) {
            SnapshotMsg msg;
            msg.key = key;
            msg.bytes = it->second;
            enqueueFrame(s, MsgType::kSnapshotPut, encodeSnapshot(msg));
        }
        // Either pushed, or the worker computes (and uploads) it on
        // first use; both ways the slot holds the key afterwards.
        s.keysHeld.insert(key);
    }

    bool stealInto(Slot &thief, std::size_t &unit)
    {
        Slot *victim = nullptr;
        for (Slot &s : slots) {
            if (&s == &thief || s.queue.empty())
                continue;
            if (!victim || s.queue.size() > victim->queue.size())
                victim = &s;
        }
        if (!victim)
            return false;
        // Take from the back: the victim keeps draining its own front,
        // so the two never ping-pong one warm group's units.
        unit = victim->queue.back();
        victim->queue.pop_back();
        return true;
    }

    /**
     * Points per kAssign frame: fixed when opts.assignBatch > 0,
     * otherwise sized so one frame carries ~kTargetAssignMs of
     * measured work (1 until the first measurement arrives).
     */
    std::size_t batchTarget() const
    {
        if (opts.assignBatch > 0)
            return static_cast<std::size_t>(opts.assignBatch);
        if (pointCostMs <= 0.0)
            return 1;
        double n = kTargetAssignMs / pointCostMs;
        if (n <= 1.0)
            return 1;
        if (n >= static_cast<double>(kMaxAdaptiveBatch))
            return kMaxAdaptiveBatch;
        return static_cast<std::size_t>(n);
    }

    void topUp(Slot &s)
    {
        const std::size_t batch = batchTarget();
        const std::size_t window =
            static_cast<std::size_t>(opts.unitWindow) * batch;
        while (s.alive && s.inflight.size() < window) {
            AssignMsg assign;
            while (assign.pointIndices.size() < batch &&
                   s.inflight.size() + assign.pointIndices.size() <
                       window) {
                std::size_t unit;
                if (!s.queue.empty()) {
                    unit = s.queue.front();
                    s.queue.pop_front();
                } else if (!orphans.empty()) {
                    unit = orphans.front();
                    orphans.pop_front();
                } else if (!stealInto(s, unit)) {
                    break;
                }
                if (completed[unit])
                    continue; // recovered from a scratch manifest
                sendWarmIfNeeded(s, unit);
                assign.pointIndices.push_back(unit);
            }
            if (assign.pointIndices.empty())
                return;
            enqueueFrame(s, MsgType::kAssign, encodeAssign(assign));
            for (std::uint64_t unit : assign.pointIndices)
                s.inflight.insert(static_cast<std::size_t>(unit));
        }
    }

    // -------------------------------------------------------- results

    void adoptPoint(std::size_t point_idx,
                    const std::vector<exp::TrialRecord> &records,
                    const std::string &origin)
    {
        if (point_idx >= completed.size())
            fail(origin + " reported point " + std::to_string(point_idx) +
                 " beyond the grid");
        if (records.size() != trialsPerPoint)
            fail(origin + " reported " + std::to_string(records.size()) +
                 " trials for point " + std::to_string(point_idx) +
                 ", expected " + std::to_string(trialsPerPoint));
        for (std::size_t t = 0; t < records.size(); ++t) {
            std::uint64_t global_idx =
                static_cast<std::uint64_t>(point_idx) * trialsPerPoint + t;
            std::uint64_t want =
                exp::deriveTrialSeed(header.baseSeed, global_idx);
            if (records[t].trial != static_cast<int>(t) ||
                records[t].seed != want ||
                records[t].pointIndex != point_idx)
                fail(origin +
                     " drifted from the per-trial seed schedule at "
                     "point " +
                     std::to_string(point_idx) +
                     " (corrupt or mismatched worker)");
        }
        std::uint64_t h = pointHash(records);
        if (completed[point_idx]) {
            // A unit can legitimately complete twice after a worker
            // death (finished in scratch, then reassigned). Identical
            // bits dedupe silently; different bits mean corruption or a
            // nondeterministic trial function — never paper over that.
            if (recHash[point_idx] != h)
                fail("duplicate results for point " +
                     std::to_string(point_idx) +
                     " disagree bit-for-bit (corruption or "
                     "nondeterministic trial function)");
            return;
        }
        sink.acceptPoint(point_idx, records.data(), records.size());
        if (checkpointOk) {
            try {
                checkpoint->acceptPoint(point_idx, records.data(),
                                        records.size());
            } catch (const std::exception &e) {
                std::fprintf(stderr,
                             "warning: sweep checkpointing disabled: "
                             "%s\n",
                             e.what());
                checkpointOk = false;
            }
        }
        recHash[point_idx] = h;
        completed[point_idx] = 1;
        ++completedPoints;
        if (opts.progress)
            opts.progress(completedPoints * trialsPerPoint,
                          completed.size() * trialsPerPoint);
    }

    void handleFrame(std::size_t idx, const Frame &frame)
    {
        Slot &s = slots[idx];
        switch (frame.type) {
          case MsgType::kHelloAck: {
            HelloAckMsg ack = decodeHelloAck(frame.payload);
            if (ack.gridFp != header.gridFp)
                fail("worker " + std::to_string(idx) +
                     " expanded a different grid (fingerprint mismatch "
                     "— mixed binaries?)");
            break;
          }
          case MsgType::kHeartbeat: {
            // Liveness is already covered (lastFrame refreshes on any
            // frame); the payload feeds adaptive batch sizing.
            HeartbeatMsg hb = decodeHeartbeat(frame.payload);
            if (hb.pointIndex != ~0ull)
                s.startedAt[hb.pointIndex] = Clock::now();
            break;
          }
          case MsgType::kSnapshotData: {
            SnapshotMsg msg = decodeSnapshot(frame.payload);
            s.keysHeld.insert(msg.key);
            if (snapCache.count(msg.key))
                break;
            try {
                state::ArchiveReader validate(msg.bytes);
                (void)validate;
            } catch (const state::ArchiveError &e) {
                std::fprintf(stderr,
                             "warning: ignoring corrupt snapshot upload "
                             "from w%zu: %s\n",
                             idx, e.what());
                break;
            }
            snapCache.emplace(msg.key, std::move(msg.bytes));
            break;
          }
          case MsgType::kResult: {
            ResultMsg msg = decodeResult(frame.payload);
            std::size_t unit = static_cast<std::size_t>(msg.pointIndex);
            auto started = s.startedAt.find(msg.pointIndex);
            if (started != s.startedAt.end()) {
                double ms = std::chrono::duration<double, std::milli>(
                                Clock::now() - started->second)
                                .count();
                s.startedAt.erase(started);
                pointCostMs = pointCostMs <= 0.0
                                  ? ms
                                  : 0.7 * pointCostMs + 0.3 * ms;
            }
            adoptPoint(unit, msg.trials, "worker " + std::to_string(idx));
            s.inflight.erase(unit);
            break;
          }
          case MsgType::kWorkerError: {
            ErrorMsg err = decodeError(frame.payload);
            fail("worker " + std::to_string(idx) + ": " + err.message);
            break;
          }
          default:
            fail("unexpected " + std::string(msgTypeName(frame.type)) +
                 " frame from worker " + std::to_string(idx));
        }
    }

    // --------------------------------------------------- worker death

    void scavengeScratch(std::size_t idx)
    {
        Slot &s = slots[idx];
        exp::ResumeManifest scavenged;
        if (!exp::loadManifest(
                exp::resultStorePath(s.scratch, spec.name), scavenged))
            return;
        if (!scavenged.matches(header))
            return; // stale scratch from an unrelated run
        std::string origin =
            "worker " + std::to_string(idx) + " (scratch store)";
        for (const auto &kv : scavenged.points)
            adoptPoint(kv.first, kv.second, origin);

        // Recover its warm snapshots too, so replacement workers can be
        // seeded instead of re-simulating the warmups it finished.
        if (spec.warmup) {
            for (const std::string &key : s.keysHeld) {
                if (snapCache.count(key))
                    continue;
                try {
                    state::Buffer cached = state::readFile(
                        exp::warmSnapshotPath(s.scratch, spec.name, key));
                    state::ArchiveReader validate(cached);
                    (void)validate;
                    snapCache.emplace(key, std::move(cached));
                } catch (const state::ArchiveError &) {
                    // Never written, or torn: the next owner recomputes.
                }
            }
        }
    }

    void onWorkerDeath(std::size_t idx)
    {
        Slot &s = slots[idx];
        reapWorker(s);
        scavengeScratch(idx);

        // Reassign what it still owed. In-flight units are charged an
        // attempt (the unit was running when the process died); queued
        // units never started and move for free.
        for (std::size_t unit : s.inflight) {
            if (completed[unit])
                continue;
            if (++attempts[unit] >= opts.maxUnitAttempts)
                fail("point " + std::to_string(unit) + " (" +
                     meta.points[unit].toString() + ") died with " +
                     std::to_string(attempts[unit]) +
                     " workers (attempt limit " +
                     std::to_string(opts.maxUnitAttempts) + ")");
            orphans.push_back(unit);
        }
        s.inflight.clear();
        s.startedAt.clear();
        for (std::size_t unit : s.queue)
            if (!completed[unit])
                orphans.push_back(unit);
        s.queue.clear();

        if (s.spawns >= opts.maxSpawnsPerWorker) {
            s.disabled = true;
            std::fprintf(stderr,
                         "shard: worker %zu disabled after %d spawns; "
                         "its units move to the remaining workers\n",
                         idx, s.spawns);
        } else {
            // Exponential backoff between respawns of the same slot.
            int delay_ms = std::min(50 << (s.spawns - 1), 1000);
            s.respawnAt =
                Clock::now() + std::chrono::milliseconds(delay_ms);
            std::fprintf(stderr,
                         "shard: worker %zu died; respawning in %d ms "
                         "(spawn %d of %d)\n",
                         idx, delay_ms, s.spawns + 1,
                         opts.maxSpawnsPerWorker);
        }

        bool anyone_left = false;
        for (const Slot &other : slots)
            if (other.alive || !other.disabled)
                anyone_left = true;
        if (!anyone_left && completedPoints < completed.size())
            fail("every worker slot exhausted its spawn budget");
    }

    // ------------------------------------------------------ main loop

    void eventLoop()
    {
        while (completedPoints < completed.size()) {
            Clock::time_point now = Clock::now();

            for (std::size_t i = 0; i < slots.size(); ++i) {
                Slot &s = slots[i];
                if (!s.alive && !s.disabled && now >= s.respawnAt)
                    spawn(i);
            }

            for (Slot &s : slots)
                if (s.alive)
                    topUp(s);

            std::vector<struct pollfd> pfds;
            std::vector<std::pair<std::size_t, bool>> who; // slot, isRead
            for (std::size_t i = 0; i < slots.size(); ++i) {
                Slot &s = slots[i];
                if (!s.alive)
                    continue;
                pfds.push_back({s.rfd, POLLIN, 0});
                who.emplace_back(i, true);
                if (s.outPos < s.outbox.size()) {
                    pfds.push_back({s.wfd, POLLOUT, 0});
                    who.emplace_back(i, false);
                }
            }
            if (pfds.empty()) {
                // Nothing alive: sleep until the nearest respawn.
                Clock::time_point wake = now + std::chrono::seconds(1);
                for (const Slot &s : slots)
                    if (!s.alive && !s.disabled)
                        wake = std::min(wake, s.respawnAt);
                auto ms = std::chrono::duration_cast<
                              std::chrono::milliseconds>(wake - now)
                              .count();
                if (ms > 0)
                    ::poll(nullptr, 0, static_cast<int>(ms));
                continue;
            }

            int timeout_ms = 500;
            if (opts.stallTimeoutMs > 0)
                timeout_ms = std::min(
                    timeout_ms, std::max(1, opts.stallTimeoutMs / 4));
            int rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                            timeout_ms);
            if (rc < 0) {
                if (errno == EINTR)
                    continue;
                fail(std::string("poll() failed: ") +
                     std::strerror(errno));
            }

            std::vector<std::size_t> deaths;
            for (std::size_t p = 0; p < pfds.size(); ++p) {
                if (pfds[p].revents == 0)
                    continue;
                std::size_t idx = who[p].first;
                Slot &s = slots[idx];
                if (!s.alive)
                    continue;
                if (!who[p].second) {
                    flushOutbox(s);
                    continue;
                }
                bool dead = false;
                for (;;) {
                    std::uint8_t chunk[65536];
                    ssize_t n = ::read(s.rfd, chunk, sizeof chunk);
                    if (n > 0) {
                        s.decoder.feed(chunk,
                                       static_cast<std::size_t>(n));
                        s.lastFrame = Clock::now();
                        continue;
                    }
                    if (n == 0) {
                        dead = true;
                        break;
                    }
                    if (errno == EINTR)
                        continue;
                    if (errno == EAGAIN || errno == EWOULDBLOCK)
                        break;
                    dead = true;
                    break;
                }
                // Drain complete frames — including ones that arrived
                // just before a death. A CRC/framing error here means
                // the stream itself is corrupt: results can no longer
                // be trusted, so it aborts rather than retries. (A
                // kill mid-frame-write is NOT corruption — the partial
                // tail simply never completes and is discarded.)
                Frame frame;
                try {
                    while (s.decoder.next(frame))
                        handleFrame(idx, frame);
                } catch (const ProtocolError &e) {
                    fail("worker " + std::to_string(idx) +
                         " protocol corruption: " + e.what());
                }
                if (dead)
                    deaths.push_back(idx);
            }
            for (std::size_t idx : deaths)
                if (slots[idx].alive)
                    onWorkerDeath(idx);

            // Live-but-wedged workers (optional watchdog).
            if (opts.stallTimeoutMs > 0) {
                now = Clock::now();
                for (std::size_t i = 0; i < slots.size(); ++i) {
                    Slot &s = slots[i];
                    if (s.alive && !s.inflight.empty() &&
                        now - s.lastFrame > std::chrono::milliseconds(
                                                opts.stallTimeoutMs)) {
                        std::fprintf(stderr,
                                     "shard: worker %zu stalled for "
                                     ">%d ms; killing\n",
                                     i, opts.stallTimeoutMs);
                        killWorker(s);
                        // Death completes via EOF on the next poll.
                    }
                }
            }
        }
    }

    void shutdownWorkers()
    {
        for (Slot &s : slots)
            if (s.alive)
                enqueueFrame(s, MsgType::kShutdown, Buffer());
        // Grace window, then SIGKILL. Every result is accounted for by
        // now, so a straggler (e.g. blocked uploading a snapshot the
        // sweep no longer needs) loses nothing.
        Clock::time_point deadline =
            Clock::now() + std::chrono::seconds(5);
        for (Slot &s : slots) {
            if (!s.alive)
                continue;
            for (;;) {
                flushOutbox(s);
                // Discard late frames so a worker blocked writing can
                // reach its next read and see the shutdown.
                std::uint8_t sink[4096];
                while (::read(s.rfd, sink, sizeof sink) > 0) {
                }
                int status = 0;
                pid_t got = ::waitpid(s.pid, &status, WNOHANG);
                if (got == s.pid || (got < 0 && errno != EINTR)) {
                    s.pid = -1;
                    break;
                }
                if (Clock::now() >= deadline) {
                    killWorker(s);
                    break;
                }
                ::poll(nullptr, 0, 10);
            }
            reapWorker(s);
        }
    }

    void killAll()
    {
        for (Slot &s : slots) {
            if (s.alive)
                killWorker(s);
            reapWorker(s);
        }
    }
};

} // namespace

std::string
selfExecutablePath()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n <= 0)
        throw std::runtime_error(
            "shard: cannot resolve /proc/self/exe; pass "
            "ShardOptions::binaryPath explicitly");
    buf[n] = '\0';
    return std::string(buf);
}

ShardCoordinator::ShardCoordinator(ShardOptions opts)
    : opts_(std::move(opts))
{
}

exp::StreamStats
ShardCoordinator::runStreaming(const exp::ScenarioSpec &spec,
                               exp::ResultSink &sink) const
{
    if (!spec.run)
        throw std::invalid_argument("ShardCoordinator: scenario '" +
                                    spec.name +
                                    "' has no trial function");
    if (opts_.workers < 1)
        throw std::invalid_argument(
            "ShardCoordinator: workers must be >= 1");
    if (opts_.unitWindow < 1 || opts_.maxUnitAttempts < 1 ||
        opts_.maxSpawnsPerWorker < 1)
        throw std::invalid_argument(
            "ShardCoordinator: window/attempt/spawn bounds must be >= 1");
    if (opts_.assignBatch < 0)
        throw std::invalid_argument(
            "ShardCoordinator: assignBatch must be >= 0 (0 = adaptive)");

    ShardOptions resolved = opts_;
    if (resolved.binaryPath.empty())
        resolved.binaryPath = selfExecutablePath();

    Run run(spec, resolved, sink);
    run.meta.scenario = spec.name;
    run.meta.description = spec.description;
    run.meta.baseSeed = resolved.seed.value_or(spec.baseSeed);
    run.meta.trialsPerPoint = resolved.trials.value_or(spec.trials);
    if (run.meta.trialsPerPoint < 1)
        throw std::invalid_argument(
            "ShardCoordinator: trials must be >= 1");
    run.meta.points = expandPoints(spec);
    run.meta.gridFp = exp::gridFingerprint(run.meta.points);
    run.trialsPerPoint =
        static_cast<std::size_t>(run.meta.trialsPerPoint);
    const std::size_t n_points = run.meta.points.size();

    exp::StreamStats stats;
    stats.points = n_points;
    stats.jobs = resolved.workers;

    auto t0 = Clock::now();

    run.header.scenario = run.meta.scenario;
    run.header.baseSeed = run.meta.baseSeed;
    run.header.trialsPerPoint = run.meta.trialsPerPoint;
    run.header.numPoints = n_points;
    run.header.gridFp = run.meta.gridFp;
    run.completed.assign(n_points, 0);
    run.recHash.assign(n_points, 0);
    run.attempts.assign(n_points, 0);

    sink.beginSweep(run.meta);

    // Resume: replay points completed by a previous matching run into
    // the sink (index order) before partitioning the remainder.
    run.resumable = !resolved.resumeDir.empty();
    if (run.resumable) {
        run.storePath =
            exp::resultStorePath(resolved.resumeDir, run.meta.scenario);
        try {
            exp::ColumnStoreReader prior(run.storePath);
            if (prior.matches(run.meta)) {
                run.storeMatched = true;
                prior.forEachPoint(
                    [&](std::size_t idx,
                        const std::vector<exp::TrialRecord> &records) {
                        sink.acceptPoint(idx, records.data(),
                                         records.size());
                        run.recHash[idx] = pointHash(records);
                        run.completed[idx] = 1;
                        ++run.completedPoints;
                    });
                stats.resumedPoints = run.completedPoints;
            } else {
                std::fprintf(stderr,
                             "warning: %s does not match this sweep "
                             "(grid/seed/trials changed) — restarting "
                             "from scratch\n",
                             run.storePath.c_str());
            }
        } catch (const state::ArchiveError &) {
            // Missing or unusable store: start fresh.
        }
        // Durable checkpoint: adopts the matching store (no re-append
        // of the replayed points), recreates a stale one. O(1) fsync'd
        // append per adopted point from here on.
        try {
            exp::ColumnStoreWriter::Options copts;
            copts.durable = true;
            run.checkpoint.reset(
                new exp::ColumnStoreWriter(run.storePath, copts));
            run.checkpoint->beginSweep(run.meta);
            run.checkpointOk = true;
        } catch (const std::exception &e) {
            std::fprintf(stderr,
                         "warning: sweep checkpointing disabled: %s\n",
                         e.what());
            run.checkpoint.reset();
        }
    }

    // Placement keys: the warmup key groups points sharing a warm
    // state; without a warmup each point is its own key (pure spread).
    run.pointKey.resize(n_points);
    for (std::size_t i = 0; i < n_points; ++i)
        run.pointKey[i] = spec.warmupKey
                              ? spec.warmupKey(run.meta.points[i])
                              : run.meta.points[i].toString();

    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < n_points; ++i)
        if (!run.completed[i])
            pending.push_back(i);

    if (!pending.empty()) {
        // Warm-snapshot cache reuse across restarts: trusted only when
        // the store vouched for the result directory (same rule as
        // SweepRunner's WarmTable).
        if (spec.warmup && run.resumable && run.storeMatched) {
            std::set<std::string> wanted;
            for (std::size_t i : pending)
                wanted.insert(run.pointKey[i]);
            for (const std::string &key : wanted) {
                try {
                    state::Buffer cached = state::readFile(
                        exp::warmSnapshotPath(resolved.resumeDir,
                                              run.meta.scenario, key));
                    state::ArchiveReader validate(cached);
                    (void)validate;
                    run.snapCache.emplace(key, std::move(cached));
                } catch (const state::ArchiveError &) {
                }
            }
        }

        std::size_t n_workers = std::min<std::size_t>(
            static_cast<std::size_t>(resolved.workers), pending.size());

        std::string scratch_root = resolved.scratchDir.empty()
                                       ? std::string("shard-scratch")
                                       : resolved.scratchDir;
        run.runDir = (fs::path(scratch_root) /
                      (run.meta.scenario + "-" +
                       std::to_string(::getpid())))
                         .string();
        std::error_code ec;
        fs::create_directories(run.runDir, ec);
        if (ec)
            throw std::runtime_error("shard: cannot create scratch '" +
                                     run.runDir + "': " + ec.message());

        run.slots.resize(n_workers);
        for (std::size_t i = 0; i < n_workers; ++i)
            run.slots[i].scratch =
                (fs::path(run.runDir) / ("w" + std::to_string(i)))
                    .string();

        // Pin each pending unit to the worker owning its warm key.
        HashRing ring(n_workers);
        for (std::size_t unit : pending)
            run.slots[ring.lookup(run.pointKey[unit])].queue.push_back(
                unit);

        HelloMsg hello;
        hello.scenario = run.meta.scenario;
        hello.baseSeed = run.meta.baseSeed;
        hello.trialsPerPoint = run.meta.trialsPerPoint;
        hello.numPoints = n_points;
        hello.gridFp = run.meta.gridFp;
        run.helloPayload = encodeHello(hello);

        // Writing into a dead worker's pipe must surface as EPIPE, not
        // kill the coordinator process.
        void (*old_sigpipe)(int) = std::signal(SIGPIPE, SIG_IGN);

        try {
            for (std::size_t i = 0; i < run.slots.size(); ++i)
                run.spawn(i);
            run.eventLoop();
            run.shutdownWorkers();
        } catch (const AbortError &e) {
            run.killAll();
            std::signal(SIGPIPE, old_sigpipe);
            std::fprintf(stderr,
                         "shard: scratch kept for inspection: %s\n",
                         run.runDir.c_str());
            throw std::runtime_error(e.message);
        } catch (...) {
            run.killAll();
            std::signal(SIGPIPE, old_sigpipe);
            throw;
        }
        std::signal(SIGPIPE, old_sigpipe);

        // Persist warm snapshots for bit-exact restarts, then drop the
        // scratch tree (per-worker caches and partial stores are
        // transient by contract).
        if (run.resumable && spec.warmup) {
            for (const auto &kv : run.snapCache) {
                try {
                    state::atomicWriteFile(
                        exp::warmSnapshotPath(resolved.resumeDir,
                                              run.meta.scenario,
                                              kv.first),
                        kv.second);
                } catch (const state::ArchiveError &e) {
                    std::fprintf(stderr,
                                 "warning: warm-cache persist failed: "
                                 "%s\n",
                                 e.what());
                }
            }
        }
        fs::remove_all(run.runDir, ec);
        fs::remove(fs::path(scratch_root), ec); // only when empty
    }

    stats.wallSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();

    sink.endSweep();
    if (run.checkpointOk) {
        try {
            run.checkpoint->endSweep();
        } catch (const std::exception &e) {
            std::fprintf(stderr,
                         "warning: result store footer not written: "
                         "%s\n",
                         e.what());
        }
    }
    return stats;
}

exp::SweepResult
ShardCoordinator::run(const exp::ScenarioSpec &spec) const
{
    exp::MaterializeSink materialize;
    exp::StreamStats stats = runStreaming(spec, materialize);
    exp::SweepResult result = materialize.take();
    result.jobs = stats.jobs;
    result.wallSeconds = stats.wallSeconds;
    result.resumedPoints = stats.resumedPoints;
    result.aggregates = aggregate(result.points, result.trials);
    return result;
}

exp::SweepResult
runSharded(const exp::ScenarioSpec &spec, ShardOptions opts)
{
    ShardCoordinator coordinator(std::move(opts));
    return coordinator.run(spec);
}

exp::StreamStats
runShardedStreaming(const exp::ScenarioSpec &spec, ShardOptions opts,
                    exp::ResultSink &sink)
{
    ShardCoordinator coordinator(std::move(opts));
    return coordinator.runStreaming(spec, sink);
}

} // namespace shard
} // namespace ich
