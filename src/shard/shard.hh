/**
 * @file
 * Umbrella header for the multi-process sweep sharding subsystem.
 *
 * A sharded sweep splits a scenario grid across N worker processes —
 * re-exec'd copies of the same harness binary — coordinated over a
 * CRC-framed pipe protocol, with warm snapshots placed by consistent
 * hashing and crash recovery through per-worker scratch manifests. The
 * result is byte-identical to a serial in-process sweep.
 *
 *   protocol.hh     frames, wire encoding, typed messages
 *   hash_ring.hh    Maglev-style consistent hashing (warm-key pinning)
 *   worker.hh       the `--shard-worker` process loop
 *   coordinator.hh  ShardCoordinator / runSharded()
 */

#ifndef ICH_SHARD_SHARD_HH
#define ICH_SHARD_SHARD_HH

#include "shard/coordinator.hh"
#include "shard/hash_ring.hh"
#include "shard/protocol.hh"
#include "shard/worker.hh"

#endif // ICH_SHARD_SHARD_HH
