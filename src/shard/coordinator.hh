/**
 * @file
 * ShardCoordinator: multi-process sweep execution on top of warm
 * snapshots.
 *
 * The coordinator partitions a ScenarioSpec's expanded grid into work
 * units (one grid point = all its trials), spawns N worker processes —
 * fork/exec of this same binary in `--shard-worker` mode — and drives
 * them over the CRC-framed pipe protocol in shard/protocol.hh.
 *
 * Placement: units are pinned to workers by Maglev-consistent-hashing
 * their warmup key (shard/hash_ring.hh), so each unique warm state is
 * simulated once and stays cached where its points run. An idle worker
 * steals queued units from the most-loaded peer — byte-identity is
 * placement-independent (the per-trial seed contract), so stealing is
 * always safe — and the coordinator forwards already-computed warm
 * snapshots to the thief so stolen units skip the warmup too.
 *
 * Fault tolerance: a worker death (EOF on its pipe) triggers (1) a
 * scavenge of the worker's fsync'd scratch column store, recovering
 * points it completed but never reported, (2) reassignment of its
 * remaining units to live workers, and (3) a bounded-backoff respawn of
 * the slot. A slot that keeps dying is disabled (its ring slots
 * redistribute); a unit that keeps failing aborts the sweep with a loud
 * report. Trial exceptions are deterministic, so they abort immediately
 * rather than retry. Duplicate identical points dedupe silently (by
 * content hash), conflicting bits abort (corruption signal).
 *
 * The outcome streams through the same ResultSink contract as
 * SweepRunner and is byte-identical to it: same trial records (metric
 * doubles travel as raw IEEE-754 bits), same aggregation, same reports.
 */

#ifndef ICH_SHARD_COORDINATOR_HH
#define ICH_SHARD_COORDINATOR_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "exp/aggregate.hh"
#include "exp/scenario.hh"
#include "exp/sink.hh"

namespace ich
{
namespace shard
{

struct ShardOptions {
    /** Worker processes (>= 1; capped at the pending unit count). */
    int workers = 2;
    /** Override the spec's base seed / trials (same as RunnerOptions). */
    std::optional<std::uint64_t> seed;
    std::optional<int> trials;
    /**
     * Resumable-sweep directory (empty: off). Exactly the SweepRunner
     * contract: `<scenario>.colstore` prefills completed points, every
     * adopted point is appended to it durably (O(1) fsync'd chunks),
     * and warm snapshots are cached as `<scenario>.warm-*.snap` for
     * bit-exact restarts.
     */
    std::string resumeDir;
    /**
     * Scratch root for per-worker snapshot caches and partial column
     * stores. Default: "shard-scratch" in the working directory;
     * the per-run subdirectory is removed on clean exit and kept (with
     * a pointer on stderr) when the sweep fails.
     */
    std::string scratchDir;
    /**
     * Worker binary. Default: /proc/self/exe (the coordinator and its
     * workers must be the same build, or the grid-fingerprint handshake
     * refuses the sweep).
     */
    std::string binaryPath;
    /**
     * Extra argv entries for every worker, e.g. a harness-specific
     * flag like `--grid large` that shapes the scenario registry.
     */
    std::vector<std::string> workerArgs;
    /** Assignment frames kept in flight per worker (pipelining); the
     *  point window is unitWindow * the current batch size. */
    int unitWindow = 2;
    /**
     * Grid points packed per kAssign frame. 1 sends one point per
     * frame (the pre-batching behavior); N > 1 always packs up to N.
     * 0 (default) adapts: the coordinator tracks an EWMA of measured
     * per-point wall cost (heartbeat to result) and sizes batches so
     * one frame carries a few milliseconds of work — cheap points
     * (≲1 ms) pack up to 16 per frame so the per-frame scratch sync
     * and framing stop dominating, while expensive points keep the
     * fine-grained scheduling of one per frame. Batching is invisible
     * in the results: workers run batched points in order and report
     * one kResult each, so the sweep stays byte-identical.
     */
    int assignBatch = 0;
    /** A unit failing this many times aborts the sweep. */
    int maxUnitAttempts = 3;
    /** Spawn budget per worker slot (first launch + respawns). */
    int maxSpawnsPerWorker = 3;
    /**
     * Kill a hung worker after this long without any frame while work
     * is in flight (0: disabled — EOF detection covers killed workers;
     * the timeout exists for live-but-wedged ones).
     *
     * Default 30 s: workers heartbeat at every point start, so a
     * healthy worker goes silent for at most one point's runtime plus
     * one batch's scratch sync — comfortably under 30 s for every CI
     * smoke while still reaping a genuinely wedged worker. Raise it
     * (or set 0) for sweeps whose single points legitimately run
     * longer than this; the harness driver honors an
     * ICH_SHARD_STALL_MS env override for exactly that.
     */
    int stallTimeoutMs = 30000;
    /** Same contract as RunnerOptions::progress. */
    std::function<void(std::size_t, std::size_t)> progress;
    /**
     * Failure-injection hook (tests): worker slot 0 is spawned with
     * `--shard-kill-after N`, making it raise(SIGKILL) while starting
     * its Nth assigned unit. <= 0: disabled.
     */
    int testKillWorker0AfterUnits = 0;
    /**
     * Failure-injection hook (torture harness): worker slot 0 is
     * spawned with `--shard-fault SPEC`, arming this fault::Plan spec
     * in the worker process — scripted crash/hang/slow/torn faults at
     * named protocol points and worker I/O sites. Every spawn of the
     * slot re-arms the plan, so a respawned worker replays the same
     * fault unless the plan's occurrence clock says otherwise.
     * Empty: disabled.
     */
    std::string testWorker0FaultSpec;
};

class ShardCoordinator
{
  public:
    explicit ShardCoordinator(ShardOptions opts = {});

    /**
     * Run @p spec across the worker pool, streaming each adopted point
     * into @p sink (completion order; exp/sink.hh contract). Memory
     * stays O(points) hashes + O(open units) records — the coordinator
     * never retains trial records. Throws std::runtime_error on
     * unrecoverable failure (trial exception, exhausted retries,
     * conflicting duplicate results), with the failure report in the
     * message; endSweep() is never called on failure.
     */
    exp::StreamStats runStreaming(const exp::ScenarioSpec &spec,
                                  exp::ResultSink &sink) const;

    /**
     * Materializing wrapper over runStreaming(): the full SweepResult
     * with serial aggregates, byte-identical to SweepRunner::run().
     */
    exp::SweepResult run(const exp::ScenarioSpec &spec) const;

    const ShardOptions &options() const { return opts_; }

  private:
    ShardOptions opts_;
};

/** One-call convenience used by the harness driver. */
exp::SweepResult runSharded(const exp::ScenarioSpec &spec,
                            ShardOptions opts);

/** Streaming sibling of runSharded(). */
exp::StreamStats runShardedStreaming(const exp::ScenarioSpec &spec,
                                     ShardOptions opts,
                                     exp::ResultSink &sink);

/** Path of this executable (for ShardOptions::binaryPath). */
std::string selfExecutablePath();

} // namespace shard
} // namespace ich

#endif // ICH_SHARD_COORDINATOR_HH
