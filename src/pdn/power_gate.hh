/**
 * @file
 * Power-gate model with staggered wake-up (paper §2 "Power Gating", §5.4).
 *
 * Waking a gated domain takes tens of nanoseconds because the controller
 * staggers the sleep-transistor turn-on to bound di/dt noise. The paper's
 * Key Conclusion 3: the AVX power gate accounts for only ~0.1% (8–15 ns)
 * of the multi-microsecond throttling period — modeled here as a one-time
 * stall charged to the first PHI after the gate closed.
 */

#ifndef ICH_PDN_POWER_GATE_HH
#define ICH_PDN_POWER_GATE_HH

#include <cstdint>

#include "common/event_queue.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "state/fwd.hh"

namespace ich
{

/** Power-gate configuration. */
struct PowerGateConfig {
    /** Present at all? Haswell has no AVX power gate (§5.4). */
    bool present = true;
    /** Staggered wake-up latency bounds (paper: 8–15 ns for AVX PG). */
    Time wakeLatencyMin = fromNanoseconds(8);
    Time wakeLatencyMax = fromNanoseconds(15);
    /** Idle time after which the local PMU re-gates the domain. */
    Time idleCloseDelay = fromMicroseconds(30);
};

/**
 * One gated power domain (e.g. a core's AVX unit).
 *
 * Usage: before executing an instruction needing the domain, call
 * wakeLatency(); a nonzero result is a stall the thread must absorb while
 * the gate opens. touch() marks use so the idle-close timer restarts.
 */
class PowerGate
{
  public:
    PowerGate(EventQueue &eq, Rng &rng, const PowerGateConfig &cfg);

    /** True if the domain is currently gated off. */
    bool closed() const { return closed_; }

    /**
     * Open the gate if closed.
     * @return the wake-up stall to charge (0 if already open or absent).
     */
    Time open();

    /** Record use of the domain (defers the idle close). */
    void touch();

    /** Number of open transitions (stats/tests). */
    std::uint64_t openCount() const { return opens_; }

    const PowerGateConfig &config() const { return cfg_; }

    /** Snapshot hooks; the idle-close timer re-arms on restore. */
    void saveState(state::SaveContext &ctx) const;
    void restoreState(state::SectionReader &r, state::RestoreContext &ctx);

  private:
    EventQueue &eq_;
    Rng &rng_;
    PowerGateConfig cfg_;
    bool closed_;
    Time lastUse_ = 0;
    EventId closeEvent_ = EventQueue::kInvalidEvent;
    std::uint64_t opens_ = 0;

    void scheduleClose();
    void maybeClose();
};

} // namespace ich

#endif // ICH_PDN_POWER_GATE_HH
