/**
 * @file
 * Power-gate model with staggered wake-up (paper §2 "Power Gating", §5.4).
 *
 * Waking a gated domain takes tens of nanoseconds because the controller
 * staggers the sleep-transistor turn-on to bound di/dt noise. The paper's
 * Key Conclusion 3: the AVX power gate accounts for only ~0.1% (8–15 ns)
 * of the multi-microsecond throttling period — modeled here as a one-time
 * stall charged to the first PHI after the gate closed.
 *
 * The idle-close countdown is evaluated lazily (closed-form from the
 * last-use timestamp) instead of via an event-queue timer, so touching
 * the gate on every PHI costs zero heap operations and the gate owns no
 * pending events at all.
 *
 * Long-running kernels pin the gate with beginUse()/endUse(): the idle
 * countdown starts only when the last user releases the unit. The older
 * open()/touch()-only protocol measured idleness from the *start* of a
 * use period, so a kernel longer than idleCloseDelay had its gate closed
 * underneath it and the next kernel was charged a spurious wake stall.
 */

#ifndef ICH_PDN_POWER_GATE_HH
#define ICH_PDN_POWER_GATE_HH

#include <cstdint>

#include "common/event_queue.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "state/fwd.hh"

namespace ich
{

/** Power-gate configuration. */
struct PowerGateConfig {
    /** Present at all? Haswell has no AVX power gate (§5.4). */
    bool present = true;
    /** Staggered wake-up latency bounds (paper: 8–15 ns for AVX PG). */
    Time wakeLatencyMin = fromNanoseconds(8);
    Time wakeLatencyMax = fromNanoseconds(15);
    /** Idle time after which the local PMU re-gates the domain. */
    Time idleCloseDelay = fromMicroseconds(30);
};

/**
 * One gated power domain (e.g. a core's AVX unit).
 *
 * Usage: a kernel that executes on the domain brackets its execution
 * with beginUse() (absorbing any returned wake-up stall) and endUse().
 * The fire-and-forget protocol — open() for a one-shot use, touch() to
 * bump the idle countdown — remains for short uses and tests.
 */
class PowerGate
{
  public:
    PowerGate(EventQueue &eq, Rng &rng, const PowerGateConfig &cfg);

    /** True if the domain is currently gated off (lazily evaluated). */
    bool closed() const;

    /**
     * Open the gate if closed; the idle countdown restarts now.
     * @return the wake-up stall to charge (0 if already open or absent).
     */
    Time open();

    /** open() + pin: the gate cannot idle-close while users remain. */
    Time beginUse();

    /** Release a beginUse() pin; the idle countdown restarts now. */
    void endUse();

    /** Record a momentary use of the domain (defers the idle close). */
    void touch();

    /** Active beginUse() pins (tests). */
    int users() const { return users_; }

    /** Number of open transitions (stats/tests). */
    std::uint64_t openCount() const { return opens_; }

    const PowerGateConfig &config() const { return cfg_; }

    /** Snapshot hooks (pure state — the gate owns no pending events). */
    void saveState(state::SaveContext &ctx) const;
    void restoreState(state::SectionReader &r);

  private:
    EventQueue &eq_;
    Rng &rng_;
    PowerGateConfig cfg_;
    bool closed_; ///< latched as of the last mutation; see closed()
    int users_ = 0;
    Time lastUse_ = 0;
    std::uint64_t opens_ = 0;

    /** Latch a lapsed idle close before mutating lastUse_/users_. */
    void latchIdleClose();
};

} // namespace ich

#endif // ICH_PDN_POWER_GATE_HH
