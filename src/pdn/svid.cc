#include "pdn/svid.hh"

#include <cassert>
#include <utility>

#include "state/snapshot.hh"

namespace ich
{

void
Svid::submit(double target_volts, bool is_increase, DoneCallback on_done)
{
    queue_.push_back(Txn{target_volts, is_increase, std::move(on_done)});
    if (is_increase)
        ++upInFlight_;
    if (!inFlight_)
        startNext();
}

void
Svid::saveState(state::SaveContext &ctx) const
{
    if (busy())
        throw state::ArchiveError("Svid: snapshot while transactions "
                                  "are queued or ramping — quiesce "
                                  "first");
    ctx.w().putU64(completed_);
    // Delegate the rail itself so one section round-trips the domain.
    vr_.saveState(ctx);
}

void
Svid::restoreState(state::SectionReader &r, state::RestoreContext &ctx)
{
    completed_ = r.getU64();
    inFlight_ = false;
    upInFlight_ = 0;
    queue_.clear();
    vr_.restoreState(r, ctx);
}

void
Svid::startNext()
{
    assert(!inFlight_);
    if (queue_.empty())
        return;
    Txn txn = std::move(queue_.front());
    queue_.pop_front();
    inFlight_ = true;
    vr_.setTarget(txn.targetVolts,
                  [this, txn = std::move(txn)]() mutable {
                      inFlight_ = false;
                      ++completed_;
                      if (txn.isIncrease) {
                          assert(upInFlight_ > 0);
                          --upInFlight_;
                      }
                      if (txn.onDone) {
                          DoneCallback cb = std::move(txn.onDone);
                          cb();
                      }
                      // The done callback may have submitted (and
                      // thereby started) the next transaction already.
                      if (!inFlight_)
                          startNext();
                  });
}

} // namespace ich
