/**
 * @file
 * Voltage regulator model with finite slew rate and command latency.
 *
 * The three PDN styles the paper discusses are parameterizations of the
 * same model (§2, §5.4, §7):
 *  - MBVR (motherboard VR, Coffee Lake / Cannon Lake): slow ramp, SVID
 *    command overhead — throttling periods of 12–15 µs.
 *  - FIVR/IVR (Haswell): faster ramp — ~9 µs throttling periods.
 *  - LDO (mitigation, recent AMD parts): <0.5 µs transitions.
 *
 * The voltage ramps linearly at `slew` between set points; queries return
 * the instantaneous interpolated value.
 */

#ifndef ICH_PDN_VR_HH
#define ICH_PDN_VR_HH

#include <functional>
#include <string>

#include "common/event_queue.hh"
#include "common/rng.hh"
#include "common/ticker.hh"
#include "common/types.hh"
#include "state/fwd.hh"

namespace ich
{

/** Regulator kind (selects a default parameterization). */
enum class VrKind { kMotherboard, kIntegrated, kLowDropout };

/** Voltage regulator configuration. */
struct VrConfig {
    VrKind kind = VrKind::kMotherboard;
    /** Ramp slew rate in volts per second (e.g. 1 mV/µs = 1000 V/s). */
    double slewVoltsPerSecond = 1000.0;
    /** Latency from command issue to ramp start (SVID decode, DAC). */
    Time commandLatency = fromNanoseconds(500);
    /** Settle time after the ramp reaches the target. */
    Time settleTime = fromNanoseconds(500);
    /**
     * Uniform jitter added to commandLatency per transaction (analog
     * noise, bus arbitration). Zero keeps the model fully deterministic.
     */
    Time commandJitter = 0;

    /** Canonical parameter sets. */
    static VrConfig motherboard();
    static VrConfig integrated();
    static VrConfig lowDropout();
};

/**
 * One voltage rail with linear-slew transitions.
 *
 * setTarget() is a single in-flight transaction: issuing a new target while
 * a transition is active retargets the ramp from the instantaneous voltage
 * (the SVID layer above serializes transactions, so in practice the PMU
 * never does this for up-transitions; tests exercise it directly).
 */
class VoltageRegulator
{
  public:
    using DoneCallback = std::function<void()>;

    /**
     * @param rng Optional jitter source; required when
     *            cfg.commandJitter > 0.
     */
    VoltageRegulator(EventQueue &eq, const VrConfig &cfg,
                     double initial_volts, std::string name = "vr",
                     Rng *rng = nullptr);

    /** Instantaneous output voltage. */
    double volts() const;

    /** Final target of the in-flight or last transition. */
    double targetVolts() const { return target_; }

    /** True while a transition (command+ramp+settle) is in flight. */
    bool busy() const { return busy_; }

    /**
     * Begin a transition to @p target_volts; @p on_done fires after the
     * ramp completes and the output has settled.
     */
    void setTarget(double target_volts, DoneCallback on_done = nullptr);

    /**
     * Predicted duration of a transition from the current voltage to
     * @p target_volts (command + ramp + settle).
     */
    Time transitionTime(double target_volts) const;

    /**
     * Fast-forward query: absolute time of the pending completion
     * event (ramp end + settle, jitter already applied), or kTimeNever
     * when the rail is settled. The ramp itself is closed-form —
     * volts() interpolates — so completion is the only discrete state
     * change this component owns.
     */
    Time
    nextInterestingTime() const
    {
        return busy_ ? rampEndTime_ + cfg_.settleTime : kTimeNever;
    }

    const VrConfig &config() const { return cfg_; }

    /**
     * Snapshot hooks. The rail must be settled (not busy) at the
     * quiesce point — the done callback is an unserializable closure
     * owned by the SVID layer; saveState() throws while ramping.
     */
    void saveState(state::SaveContext &ctx) const;
    void restoreState(state::SectionReader &r, state::RestoreContext &ctx);

  private:
    EventQueue &eq_;
    VrConfig cfg_;
    std::string name_;
    Rng *rng_;

    double target_;
    bool busy_ = false;

    // Piecewise-linear state: voltage was `rampFromVolts_` at
    // `rampStartTime_`, ramping toward `target_` (after command latency).
    double rampFromVolts_;
    Time rampStartTime_ = 0;
    Time rampEndTime_ = 0;

    /**
     * Completion deadline. A superseding setTarget() retargets the
     * pending event in place (the callback is the same every time), so
     * a ramp shortened or extended mid-flight costs one in-place sift
     * instead of a deschedule+schedule pair.
     */
    CoalescedTimer done_;
    DoneCallback onDone_;

    void finishTransition();
};

} // namespace ich

#endif // ICH_PDN_VR_HH
