/**
 * @file
 * Serial Voltage IDentification (SVID) transaction bus.
 *
 * The central PMU talks to the (shared) motherboard VR over a serial
 * interface that admits one transaction at a time (paper §2, Figure 1).
 * This serialization is the root cause of Multi-Throttling-Cores (§4.3.1):
 * when two cores request voltage increases within a few hundred cycles of
 * each other, the second transition waits for the first, so both cores'
 * throttling periods stretch until the queue drains.
 */

#ifndef ICH_PDN_SVID_HH
#define ICH_PDN_SVID_HH

#include <cstdint>
#include <deque>
#include <functional>

#include "common/event_queue.hh"
#include "common/types.hh"
#include "pdn/vr.hh"
#include "state/fwd.hh"

namespace ich
{

/**
 * FIFO of voltage transactions in front of one VoltageRegulator.
 */
class Svid
{
  public:
    using DoneCallback = std::function<void()>;

    Svid(EventQueue &eq, VoltageRegulator &vr) : eq_(eq), vr_(vr) {}

    /**
     * Enqueue a transition to @p target_volts.
     *
     * @param is_increase Marks guardband up-transitions; used by
     *        upTransitionsInFlight() which gates core throttle release.
     * @param on_done Invoked when this transaction's ramp settles.
     */
    void submit(double target_volts, bool is_increase,
                DoneCallback on_done = nullptr);

    /** True while any transaction is queued or ramping. */
    bool busy() const { return inFlight_ || !queue_.empty(); }

    /**
     * Number of not-yet-settled *increase* transactions (queued plus
     * in-flight). Cores throttled for a voltage increase are released
     * only when this count reaches zero — the Multi-Throttling-Cores
     * exacerbation.
     */
    int upTransitionsInFlight() const { return upInFlight_; }

    /** Total transactions settled (stats/tests). */
    std::uint64_t completedTransactions() const { return completed_; }

    /**
     * Fast-forward query: the in-flight transaction's VR completion
     * deadline, or kTimeNever when the bus is idle. Queued transactions
     * start inside the completion callback chain, so the head
     * transaction's deadline is always the bus's next discrete change.
     */
    Time
    nextInterestingTime() const
    {
        return busy() ? vr_.nextInterestingTime() : kTimeNever;
    }

    VoltageRegulator &vr() { return vr_; }
    const VoltageRegulator &vr() const { return vr_; }

    /**
     * Snapshot hooks. Transactions carry completion closures, so the
     * bus must be idle at the quiesce point; saveState() throws while
     * any transaction is queued or in flight.
     */
    void saveState(state::SaveContext &ctx) const;
    void restoreState(state::SectionReader &r, state::RestoreContext &ctx);

  private:
    struct Txn {
        double targetVolts;
        bool isIncrease;
        DoneCallback onDone;
    };

    EventQueue &eq_;
    VoltageRegulator &vr_;
    std::deque<Txn> queue_;
    bool inFlight_ = false;
    int upInFlight_ = 0;
    std::uint64_t completed_ = 0;

    void startNext();
};

} // namespace ich

#endif // ICH_PDN_SVID_HH
