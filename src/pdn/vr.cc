#include "pdn/vr.hh"

#include <cmath>
#include <utility>

#include "state/snapshot.hh"

namespace ich
{

VrConfig
VrConfig::motherboard()
{
    VrConfig cfg;
    cfg.kind = VrKind::kMotherboard;
    cfg.slewVoltsPerSecond = 1000.0;          // 1 mV/us
    cfg.commandLatency = fromMicroseconds(1.0); // SVID serial command
    cfg.settleTime = fromMicroseconds(0.5);
    return cfg;
}

VrConfig
VrConfig::integrated()
{
    VrConfig cfg;
    cfg.kind = VrKind::kIntegrated;
    cfg.slewVoltsPerSecond = 2500.0;          // 2.5 mV/us (FIVR)
    cfg.commandLatency = fromNanoseconds(200);
    cfg.settleTime = fromNanoseconds(300);
    return cfg;
}

VrConfig
VrConfig::lowDropout()
{
    VrConfig cfg;
    cfg.kind = VrKind::kLowDropout;
    // ~200 ns/V controlled transition (paper §7 cites [82]); a 30 mV
    // guardband step completes in well under 0.5 us.
    cfg.slewVoltsPerSecond = 200000.0;
    cfg.commandLatency = fromNanoseconds(50);
    cfg.settleTime = fromNanoseconds(50);
    return cfg;
}

VoltageRegulator::VoltageRegulator(EventQueue &eq, const VrConfig &cfg,
                                   double initial_volts, std::string name,
                                   Rng *rng)
    : eq_(eq), cfg_(cfg), name_(std::move(name)), rng_(rng),
      target_(initial_volts), rampFromVolts_(initial_volts)
{
}

double
VoltageRegulator::volts() const
{
    if (!busy_)
        return target_;
    Time now = eq_.now();
    if (now <= rampStartTime_)
        return rampFromVolts_;
    if (now >= rampEndTime_)
        return target_;
    double frac = static_cast<double>(now - rampStartTime_) /
                  static_cast<double>(rampEndTime_ - rampStartTime_);
    return rampFromVolts_ + frac * (target_ - rampFromVolts_);
}

Time
VoltageRegulator::transitionTime(double target_volts) const
{
    double delta = std::fabs(target_volts - volts());
    Time ramp = fromSeconds(delta / cfg_.slewVoltsPerSecond);
    return cfg_.commandLatency + ramp + cfg_.settleTime;
}

void
VoltageRegulator::setTarget(double target_volts, DoneCallback on_done)
{
    // Retarget from the instantaneous voltage.
    double from = volts();
    // A superseded transition's callback is dropped: the SVID layer above
    // owns completion tracking and never overlaps transactions.
    onDone_ = std::move(on_done);
    rampFromVolts_ = from;
    target_ = target_volts;

    double delta = std::fabs(target_volts - from);
    Time ramp = fromSeconds(delta / cfg_.slewVoltsPerSecond);
    Time cmd = cfg_.commandLatency;
    if (cfg_.commandJitter > 0 && rng_ != nullptr)
        cmd += rng_->uniformInt(0, cfg_.commandJitter);
    rampStartTime_ = eq_.now() + cmd;
    rampEndTime_ = rampStartTime_ + ramp;
    busy_ = true;

    // One event per SVID voltage transaction; a superseding transaction
    // moves the pending completion deadline in place.
    done_.retarget(eq_, rampEndTime_ + cfg_.settleTime,
                   [this] { finishTransition(); });
}

void
VoltageRegulator::saveState(state::SaveContext &ctx) const
{
    if (busy_)
        throw state::ArchiveError("VoltageRegulator '" + name_ +
                                  "': snapshot while a transition is in "
                                  "flight — quiesce first");
    ctx.w().putF64(target_);
    ctx.w().putF64(rampFromVolts_);
    ctx.w().putU64(rampStartTime_);
    ctx.w().putU64(rampEndTime_);
}

void
VoltageRegulator::restoreState(state::SectionReader &r,
                               state::RestoreContext &)
{
    target_ = r.getF64();
    rampFromVolts_ = r.getF64();
    rampStartTime_ = r.getU64();
    rampEndTime_ = r.getU64();
    busy_ = false;
    done_ = CoalescedTimer{};
    onDone_ = nullptr;
}

void
VoltageRegulator::finishTransition()
{
    done_.fired();
    busy_ = false;
    rampFromVolts_ = target_;
    if (onDone_) {
        // Move out first: the callback may start a new transition.
        DoneCallback cb = std::move(onDone_);
        onDone_ = nullptr;
        cb();
    }
}

} // namespace ich
