/**
 * @file
 * Load-line (adaptive voltage positioning) model, paper §2 / Figure 2.
 *
 * Vccload = Vcc − RLL · Icc. The PMU raises the regulator set point (adds a
 * voltage guardband) so Vccload stays above Vccmin under the worst-case
 * current of the current power-virus level.
 */

#ifndef ICH_PDN_LOADLINE_HH
#define ICH_PDN_LOADLINE_HH

namespace ich
{

/** Load-line parameters and helpers (all volts/amps/ohms). */
class LoadLine
{
  public:
    /**
     * @param rll_ohm Load-line impedance; recent client parts use
     *                1.6–2.4 mΩ (paper §2).
     */
    explicit LoadLine(double rll_ohm) : rll_(rll_ohm) {}

    double rllOhm() const { return rll_; }

    /** Voltage at the load given the VR output voltage and load current. */
    double
    vccLoad(double vcc_volts, double icc_amps) const
    {
        return vcc_volts - rll_ * icc_amps;
    }

    /** Voltage droop (IR drop) for a given current. */
    double droop(double icc_amps) const { return rll_ * icc_amps; }

    /**
     * Minimum VR set point that keeps the load at/above @p vccmin when
     * drawing @p icc_virus (the current power-virus level's current).
     */
    double
    requiredVcc(double vccmin_volts, double icc_virus_amps) const
    {
        return vccmin_volts + rll_ * icc_virus_amps;
    }

    /**
     * Guardband (Equation 1): ΔV = (Cdyn2 − Cdyn1) · Vcc1 · F · RLL.
     *
     * @param dcdyn_farad Dynamic-capacitance difference between virus
     *                    levels, in farads.
     * @param vcc_volts Supply voltage at the lower level.
     * @param freq_hz Core clock frequency.
     */
    double
    guardband(double dcdyn_farad, double vcc_volts, double freq_hz) const
    {
        return dcdyn_farad * vcc_volts * freq_hz * rll_;
    }

  private:
    double rll_;
};

} // namespace ich

#endif // ICH_PDN_LOADLINE_HH
