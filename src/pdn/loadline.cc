#include "pdn/loadline.hh"

// LoadLine is header-only arithmetic; this translation unit exists so the
// module has a stable home for future out-of-line additions.
