#include "pdn/power_gate.hh"

#include "state/snapshot.hh"

namespace ich
{

PowerGate::PowerGate(EventQueue &eq, Rng &rng, const PowerGateConfig &cfg)
    : eq_(eq), rng_(rng), cfg_(cfg), closed_(cfg.present)
{
}

bool
PowerGate::closed() const
{
    if (!cfg_.present)
        return false;
    if (closed_)
        return true;
    return users_ == 0 && eq_.now() >= lastUse_ + cfg_.idleCloseDelay;
}

void
PowerGate::latchIdleClose()
{
    // Order matters: a lapsed idle window closed the gate *before* the
    // mutation now being applied, exactly when the old timer event
    // would have fired.
    if (cfg_.present && !closed_ && users_ == 0 &&
        eq_.now() >= lastUse_ + cfg_.idleCloseDelay)
        closed_ = true;
}

Time
PowerGate::open()
{
    if (!cfg_.present)
        return 0;
    latchIdleClose();
    lastUse_ = eq_.now();
    if (!closed_)
        return 0;
    closed_ = false;
    ++opens_;
    return rng_.uniformInt(cfg_.wakeLatencyMin, cfg_.wakeLatencyMax);
}

Time
PowerGate::beginUse()
{
    Time stall = open();
    if (cfg_.present)
        ++users_;
    return stall;
}

void
PowerGate::endUse()
{
    if (!cfg_.present)
        return;
    if (users_ > 0)
        --users_;
    // Idle countdown runs from the end of use, not its beginning.
    lastUse_ = eq_.now();
}

void
PowerGate::touch()
{
    if (!cfg_.present)
        return;
    latchIdleClose();
    if (!closed_)
        lastUse_ = eq_.now();
}

void
PowerGate::saveState(state::SaveContext &ctx) const
{
    ctx.w().putBool(closed_);
    ctx.w().putI32(users_);
    ctx.w().putU64(lastUse_);
    ctx.w().putU64(opens_);
}

void
PowerGate::restoreState(state::SectionReader &r)
{
    closed_ = r.getBool();
    users_ = r.getI32();
    lastUse_ = r.getU64();
    opens_ = r.getU64();
}

} // namespace ich
