#include "pdn/power_gate.hh"

#include "state/snapshot.hh"

namespace ich
{

PowerGate::PowerGate(EventQueue &eq, Rng &rng, const PowerGateConfig &cfg)
    : eq_(eq), rng_(rng), cfg_(cfg), closed_(cfg.present)
{
}

Time
PowerGate::open()
{
    if (!cfg_.present)
        return 0;
    lastUse_ = eq_.now();
    if (!closed_) {
        scheduleClose();
        return 0;
    }
    closed_ = false;
    ++opens_;
    scheduleClose();
    return rng_.uniformInt(cfg_.wakeLatencyMin, cfg_.wakeLatencyMax);
}

void
PowerGate::touch()
{
    if (!cfg_.present)
        return;
    lastUse_ = eq_.now();
    if (!closed_)
        scheduleClose();
}

void
PowerGate::scheduleClose()
{
    if (closeEvent_ != EventQueue::kInvalidEvent)
        eq_.deschedule(closeEvent_);
    // Rescheduled on every gated-domain touch.
    closeEvent_ = eq_.scheduleChecked(lastUse_ + cfg_.idleCloseDelay,
                                      [this] { maybeClose(); });
}

void
PowerGate::saveState(state::SaveContext &ctx) const
{
    ctx.w().putBool(closed_);
    ctx.w().putU64(lastUse_);
    ctx.w().putU64(opens_);
    ctx.putEvent(closeEvent_);
}

void
PowerGate::restoreState(state::SectionReader &r,
                        state::RestoreContext &ctx)
{
    closed_ = r.getBool();
    lastUse_ = r.getU64();
    opens_ = r.getU64();
    ctx.getEvent(r, [this](EventQueue &eq, Time when, int priority) {
        closeEvent_ =
            eq.schedule(when, [this] { maybeClose(); }, priority);
    });
}

void
PowerGate::maybeClose()
{
    closeEvent_ = EventQueue::kInvalidEvent;
    if (closed_)
        return;
    if (eq_.now() >= lastUse_ + cfg_.idleCloseDelay)
        closed_ = true;
    else
        scheduleClose();
}

} // namespace ich
