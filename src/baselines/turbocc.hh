/**
 * @file
 * TurboCC baseline (Kalmbach et al., arXiv 2020; paper §3, §6.2,
 * Fig. 12b).
 *
 * Cross-core covert channel that modulates the *turbo license*: the
 * sender holding an AVX2 loop forces the shared clock domain down to the
 * LVL1 turbo frequency; the receiver senses the frequency from loop
 * timing. Slow because the license releases only milliseconds after the
 * AVX2 activity stops (and the paper's Key Conclusion 2: the cap is a
 * current-limit mechanism, not thermal). ~61 b/s.
 */

#ifndef ICH_BASELINES_TURBOCC_HH
#define ICH_BASELINES_TURBOCC_HH

#include "channels/channel.hh"

namespace ich
{

/** TurboCC configuration. */
struct TurboCCConfig {
    ChipConfig chip;
    std::uint64_t seed = 1;
    /** One bit per bitTime; must cover license drop + release. */
    Time bitTime = fromMilliseconds(16.4);
    /** Fraction of the bit the sender holds the AVX2 loop. */
    double holdFraction = 0.92;
    /** Decode window (fraction of bitTime). */
    double windowLo = 0.80;
    double windowHi = 0.98;
    std::uint64_t chunkIterations = 2000;
    InstClass senderClass = InstClass::k256Heavy;
};

/** Turbo-license frequency covert channel. */
class TurboCC
{
  public:
    explicit TurboCC(TurboCCConfig cfg);

    TransmitResult transmit(const BitVec &bits);
    double ratedThroughputBps() const;

  private:
    TurboCCConfig cfg_;
    double threshold_ = 0.0;
    bool calibrated_ = false;
    std::uint64_t runCounter_ = 0;

    std::vector<double> runBits(const std::vector<int> &bits);
    void calibrate();
};

} // namespace ich

#endif // ICH_BASELINES_TURBOCC_HH
