/**
 * @file
 * Shared helper for the frequency-modulation baseline channels
 * (TurboCC, DFScovert, PowerT): a receiver thread timing a chunked 64b
 * loop to estimate the chip clock frequency, and a window-mean decoder.
 */

#ifndef ICH_BASELINES_FREQ_RECEIVER_HH
#define ICH_BASELINES_FREQ_RECEIVER_HH

#include <vector>

#include "chip/simulation.hh"
#include "isa/program.hh"

namespace ich
{
namespace baselines
{

constexpr int kFreqRxUnroll = 20;

/** Build the receiver's continuously-timing chunked scalar loop. */
inline Program
makeFreqReceiverProgram(double total_us, double nominal_freq_ghz,
                        std::uint64_t chunk_iters)
{
    double iter_cycles = makeKernel(InstClass::kScalar64, 1, kFreqRxUnroll)
                             .cyclesPerIteration();
    double iter_us = iter_cycles * cyclePicos(nominal_freq_ghz) * 1e-6;
    auto iters = static_cast<std::uint64_t>(total_us / iter_us) + 1000;
    Program rx;
    rx.loopChunked(InstClass::kScalar64, iters, chunk_iters, /*tag=*/0,
                   kFreqRxUnroll);
    return rx;
}

/**
 * Mean observed frequency (GHz) over [t_lo_us, t_hi_us], estimated from
 * chunk latencies. Returns 0 when no chunk falls in the window.
 */
inline double
meanFreqInWindow(const std::vector<Record> &recs,
                 std::uint64_t chunk_iters, double t_lo_us,
                 double t_hi_us)
{
    double iter_cycles = makeKernel(InstClass::kScalar64, 1, kFreqRxUnroll)
                             .cyclesPerIteration();
    double chunk_cycles = iter_cycles * chunk_iters;
    double sum_ghz = 0.0;
    int n = 0;
    for (std::size_t i = 1; i < recs.size(); ++i) {
        double start_us = toMicroseconds(recs[i - 1].time);
        if (start_us < t_lo_us || start_us >= t_hi_us)
            continue;
        double chunk_us = toMicroseconds(recs[i].time - recs[i - 1].time);
        if (chunk_us <= 0.0)
            continue;
        sum_ghz += chunk_cycles / (chunk_us * 1000.0);
        ++n;
    }
    return n > 0 ? sum_ghz / n : 0.0;
}

} // namespace baselines
} // namespace ich

#endif // ICH_BASELINES_FREQ_RECEIVER_HH
