/**
 * @file
 * NetSpectre AVX gadget baseline (Schwarz et al., ESORICS'19; paper §3,
 * §6.2 and Fig. 12a).
 *
 * Same-hardware-thread covert channel using a *single-level* throttling
 * side-effect: the sender either executes an AVX2 loop (bit 1) or stays
 * idle (bit 0); the receiver times one AVX2 probe loop — fast means the
 * rail was already ramped (bit 1), slow means it had to ramp from
 * baseline (bit 0). One bit per transaction, so half of IChannels'
 * throughput at the same transaction pacing (Fig. 12a: 2×).
 */

#ifndef ICH_BASELINES_NETSPECTRE_HH
#define ICH_BASELINES_NETSPECTRE_HH

#include "channels/channel.hh"

namespace ich
{

/** NetSpectre-style 1-bit-per-transaction channel. */
class NetSpectre
{
  public:
    explicit NetSpectre(ChannelConfig cfg);

    TransmitResult transmit(const BitVec &bits);

    /** Bits per second the transaction pacing supports (1 bit/period). */
    double ratedThroughputBps() const;

    const ChannelConfig &config() const { return cfg_; }

  private:
    ChannelConfig cfg_;
    InstClass gadgetClass_;
    double threshold_ = 0.0;
    bool calibrated_ = false;
    std::uint64_t runCounter_ = 0;

    std::vector<double> runBits(const std::vector<int> &bits);
    void calibrate();
};

} // namespace ich

#endif // ICH_BASELINES_NETSPECTRE_HH
