/**
 * @file
 * DFScovert baseline (Alagappan et al., VLSI-SoC'17; paper §6.2,
 * Fig. 12b).
 *
 * A Trojan process modulates the CPU frequency through the software
 * governor interface (userspace frequency writes); a spy process on
 * another core senses the frequency from loop timing. Limited by the
 * multi-millisecond software/kernel governor apply path — the slowest of
 * the compared channels (~20 b/s).
 */

#ifndef ICH_BASELINES_DFSCOVERT_HH
#define ICH_BASELINES_DFSCOVERT_HH

#include "channels/channel.hh"

namespace ich
{

/** DFScovert configuration. */
struct DfsCovertConfig {
    ChipConfig chip;
    std::uint64_t seed = 1;
    Time bitTime = fromMilliseconds(50.0);
    /** Governor write path latency (sysfs + kernel worker + mailbox). */
    Time governorApplyLatency = fromMilliseconds(20.0);
    double lowGhz = 1.6;
    double highGhz = 2.8;
    double windowLo = 0.70;
    double windowHi = 0.98;
    std::uint64_t chunkIterations = 2000;
};

/** Governor-modulation covert channel. */
class DfsCovert
{
  public:
    explicit DfsCovert(DfsCovertConfig cfg);

    TransmitResult transmit(const BitVec &bits);
    double ratedThroughputBps() const;

  private:
    DfsCovertConfig cfg_;
    double threshold_ = 0.0;
    bool calibrated_ = false;
    std::uint64_t runCounter_ = 0;

    std::vector<double> runBits(const std::vector<int> &bits);
    void calibrate();
};

} // namespace ich

#endif // ICH_BASELINES_DFSCOVERT_HH
