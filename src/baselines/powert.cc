#include "baselines/powert.hh"

#include "baselines/freq_receiver.hh"

namespace ich
{

PowerT::PowerT(PowerTConfig cfg) : cfg_(std::move(cfg)) {}

double
PowerT::ratedThroughputBps() const
{
    return 1.0 / toSeconds(cfg_.bitTime);
}

void
PowerT::chooseLimit()
{
    // Project power with (a) only the receiver's scalar loop and (b) the
    // sender's burn loop added, at the top frequency bin; place the
    // limit between so only the burn trips the controller.
    ChipConfig chip = cfg_.chip;
    Simulation sim(chip, cfg_.seed);
    const ChipPowerModel &pm = sim.chip().pmu().powerModel();
    double f = chip.pmu.pstate.binsGhz.back();

    std::vector<CoreActivity> idle_act(chip.numCores);
    idle_act[1].active = true; // receiver core
    idle_act[1].cdynNf = chip.core.cdynBaseNf;
    double p_idle = pm.powerWatts(f, idle_act);

    std::vector<CoreActivity> burn_act = idle_act;
    burn_act[0].active = true;
    burn_act[0].cdynNf =
        chip.core.cdynBaseNf + traits(cfg_.senderClass).deltaCdynNf;
    burn_act[0].gbLevel = traits(cfg_.senderClass).guardbandLevel;
    double p_burn = pm.powerWatts(f, burn_act);

    limitWatts_ = 0.5 * (p_idle + p_burn);
}

std::vector<double>
PowerT::runBits(const std::vector<int> &bits)
{
    if (limitWatts_ <= 0.0)
        chooseLimit();

    ChipConfig chip = cfg_.chip;
    chip.pmu.governor.policy = GovernorPolicy::kPerformance;
    chip.pmu.powerLimit.enabled = true;
    chip.pmu.powerLimit.limitWatts = limitWatts_;
    chip.pmu.powerLimit.evalInterval = cfg_.evalInterval;
    Simulation sim(chip, cfg_.seed + (++runCounter_));

    double max_ghz = chip.pmu.pstate.binsGhz.back();
    double bit_us = toMicroseconds(cfg_.bitTime);
    Cycles first = static_cast<Cycles>(100.0 * chip.tscGhz * 1e3);
    double bit_tsc = bit_us * chip.tscGhz * 1000.0;

    double hold_us = bit_us * cfg_.holdFraction;
    double iter_cycles =
        makeKernel(cfg_.senderClass, 1, 100).cyclesPerIteration();
    // Iterations sized at ~90% of max frequency (cap drops are small).
    auto hold_iters = static_cast<std::uint64_t>(
        hold_us * max_ghz * 0.9 * 1000.0 / iter_cycles);

    Program tx;
    for (std::size_t k = 0; k < bits.size(); ++k) {
        Cycles epoch = first + static_cast<Cycles>(bit_tsc * k);
        tx.waitUntilTsc(epoch);
        if (bits[k])
            tx.loop(cfg_.senderClass, hold_iters);
    }

    double total_us = bit_us * (bits.size() + 2) + 200.0;
    Program rx = baselines::makeFreqReceiverProgram(total_us, max_ghz,
                                                    cfg_.chunkIterations);

    HwThread &tx_thr = sim.chip().core(0).thread(0);
    HwThread &rx_thr = sim.chip().core(1).thread(0);
    tx_thr.setProgram(std::move(tx));
    rx_thr.setProgram(std::move(rx));
    rx_thr.start();
    tx_thr.start();
    sim.run(fromMicroseconds(total_us));

    double first_us = toMicroseconds(sim.chip().tscToTime(first));
    std::vector<double> ghz;
    for (std::size_t k = 0; k < bits.size(); ++k) {
        double lo = first_us + bit_us * (k + cfg_.windowLo);
        double hi = first_us + bit_us * (k + cfg_.windowHi);
        ghz.push_back(baselines::meanFreqInWindow(
            rx_thr.records(), cfg_.chunkIterations, lo, hi));
    }
    return ghz;
}

void
PowerT::calibrate()
{
    std::vector<int> training = {0, 1, 0, 1, 0, 1, 0, 1};
    std::vector<double> ghz = runBits(training);
    double sum0 = 0.0, sum1 = 0.0;
    int half = static_cast<int>(training.size()) / 2;
    for (std::size_t i = 0; i < training.size(); ++i)
        (training[i] ? sum1 : sum0) += ghz[i];
    threshold_ = 0.5 * (sum0 / half + sum1 / half);
    calibrated_ = true;
}

TransmitResult
PowerT::transmit(const BitVec &bits)
{
    if (!calibrated_)
        calibrate();

    std::vector<int> tx(bits.begin(), bits.end());
    std::vector<double> ghz = runBits(tx);

    TransmitResult res;
    res.sentBits = bits;
    for (double g : ghz) {
        res.receivedBits.push_back(g < threshold_ ? 1 : 0);
        res.tpUs.push_back(g);
    }
    res.bitErrors = hammingDistance(res.sentBits, res.receivedBits);
    res.ber = bits.empty()
                  ? 0.0
                  : static_cast<double>(res.bitErrors) / bits.size();
    res.seconds = bits.size() * toSeconds(cfg_.bitTime);
    res.throughputBps =
        res.seconds > 0.0 ? bits.size() / res.seconds : 0.0;
    return res;
}

} // namespace ich
