#include "baselines/turbocc.hh"

#include <cmath>

#include "baselines/freq_receiver.hh"

namespace ich
{

TurboCC::TurboCC(TurboCCConfig cfg) : cfg_(std::move(cfg)) {}

double
TurboCC::ratedThroughputBps() const
{
    return 1.0 / toSeconds(cfg_.bitTime);
}

std::vector<double>
TurboCC::runBits(const std::vector<int> &bits)
{
    ChipConfig chip = cfg_.chip;
    chip.pmu.governor.policy = GovernorPolicy::kPerformance;
    Simulation sim(chip, cfg_.seed + (++runCounter_));

    double max_ghz = chip.pmu.pstate.binsGhz.back();
    double bit_us = toMicroseconds(cfg_.bitTime);
    // TSC cycles per microsecond = tscGhz * 1000.
    Cycles first = static_cast<Cycles>(100.0 * chip.tscGhz * 1e3);
    double bit_tsc = bit_us * chip.tscGhz * 1000.0;

    // Hold duration in sender-loop iterations at the LVL1 license
    // frequency (the frequency while the loop runs).
    double lic1_ghz = chip.pmu.pstate.licenseMaxGhz[1];
    double hold_us = bit_us * cfg_.holdFraction;
    double iter_cycles =
        makeKernel(cfg_.senderClass, 1, 100).cyclesPerIteration();
    auto hold_iters = static_cast<std::uint64_t>(
        hold_us * lic1_ghz * 1000.0 / iter_cycles);

    Program tx;
    for (std::size_t k = 0; k < bits.size(); ++k) {
        Cycles epoch = first + static_cast<Cycles>(bit_tsc * k);
        tx.waitUntilTsc(epoch);
        if (bits[k])
            tx.loop(cfg_.senderClass, hold_iters);
        // bit 0: idle until the next epoch's waitUntilTsc
    }

    double total_us = bit_us * (bits.size() + 2) + 200.0;
    Program rx = baselines::makeFreqReceiverProgram(total_us, max_ghz,
                                                    cfg_.chunkIterations);

    HwThread &tx_thr = sim.chip().core(0).thread(0);
    HwThread &rx_thr = sim.chip().core(1).thread(0);
    tx_thr.setProgram(std::move(tx));
    rx_thr.setProgram(std::move(rx));
    rx_thr.start();
    tx_thr.start();
    sim.run(fromMicroseconds(total_us));

    double first_us = toMicroseconds(sim.chip().tscToTime(first));
    std::vector<double> ghz;
    for (std::size_t k = 0; k < bits.size(); ++k) {
        double lo = first_us + bit_us * (k + cfg_.windowLo);
        double hi = first_us + bit_us * (k + cfg_.windowHi);
        ghz.push_back(baselines::meanFreqInWindow(
            rx_thr.records(), cfg_.chunkIterations, lo, hi));
    }
    return ghz;
}

void
TurboCC::calibrate()
{
    std::vector<int> training = {0, 1, 0, 1, 0, 1, 0, 1};
    std::vector<double> ghz = runBits(training);
    double sum0 = 0.0, sum1 = 0.0;
    int n = 0;
    for (std::size_t i = 0; i < training.size(); ++i) {
        if (training[i])
            sum1 += ghz[i];
        else
            sum0 += ghz[i];
        ++n;
    }
    threshold_ = 0.5 * (sum0 + sum1) / (n / 2);
    calibrated_ = true;
}

TransmitResult
TurboCC::transmit(const BitVec &bits)
{
    if (!calibrated_)
        calibrate();

    std::vector<int> tx(bits.begin(), bits.end());
    std::vector<double> ghz = runBits(tx);

    TransmitResult res;
    res.sentBits = bits;
    for (double g : ghz) {
        res.receivedBits.push_back(g < threshold_ ? 1 : 0);
        res.tpUs.push_back(g);
    }
    res.bitErrors = hammingDistance(res.sentBits, res.receivedBits);
    res.ber = bits.empty()
                  ? 0.0
                  : static_cast<double>(res.bitErrors) / bits.size();
    res.seconds = bits.size() * toSeconds(cfg_.bitTime);
    res.throughputBps =
        res.seconds > 0.0 ? bits.size() / res.seconds : 0.0;
    return res;
}

} // namespace ich
