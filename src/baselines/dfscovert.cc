#include "baselines/dfscovert.hh"

#include "baselines/freq_receiver.hh"

namespace ich
{

DfsCovert::DfsCovert(DfsCovertConfig cfg) : cfg_(std::move(cfg)) {}

double
DfsCovert::ratedThroughputBps() const
{
    return 1.0 / toSeconds(cfg_.bitTime);
}

std::vector<double>
DfsCovert::runBits(const std::vector<int> &bits)
{
    ChipConfig chip = cfg_.chip;
    chip.pmu.governor.policy = GovernorPolicy::kUserspace;
    chip.pmu.governor.userspaceGhz = cfg_.lowGhz;
    chip.pmu.governor.applyLatency = cfg_.governorApplyLatency;
    Simulation sim(chip, cfg_.seed + (++runCounter_));

    double bit_us = toMicroseconds(cfg_.bitTime);
    Cycles first = static_cast<Cycles>(100.0 * chip.tscGhz * 1e3);
    double bit_tsc = bit_us * chip.tscGhz * 1000.0;

    // Sender performs one governor write per bit.
    Program tx;
    Chip *chip_ptr = &sim.chip();
    for (std::size_t k = 0; k < bits.size(); ++k) {
        Cycles epoch = first + static_cast<Cycles>(bit_tsc * k);
        double target = bits[k] ? cfg_.highGhz : cfg_.lowGhz;
        tx.waitUntilTsc(epoch);
        tx.call([chip_ptr, target] {
            chip_ptr->pmu().writeGovernor(GovernorPolicy::kUserspace,
                                          target);
        });
    }

    double total_us = bit_us * (bits.size() + 2) + 200.0;
    Program rx = baselines::makeFreqReceiverProgram(
        total_us, cfg_.highGhz, cfg_.chunkIterations);

    HwThread &tx_thr = sim.chip().core(0).thread(0);
    HwThread &rx_thr = sim.chip().core(1).thread(0);
    tx_thr.setProgram(std::move(tx));
    rx_thr.setProgram(std::move(rx));
    rx_thr.start();
    tx_thr.start();
    sim.run(fromMicroseconds(total_us));

    double first_us = toMicroseconds(sim.chip().tscToTime(first));
    std::vector<double> ghz;
    for (std::size_t k = 0; k < bits.size(); ++k) {
        double lo = first_us + bit_us * (k + cfg_.windowLo);
        double hi = first_us + bit_us * (k + cfg_.windowHi);
        ghz.push_back(baselines::meanFreqInWindow(
            rx_thr.records(), cfg_.chunkIterations, lo, hi));
    }
    return ghz;
}

void
DfsCovert::calibrate()
{
    std::vector<int> training = {0, 1, 0, 1, 0, 1};
    std::vector<double> ghz = runBits(training);
    double sum0 = 0.0, sum1 = 0.0;
    int half = static_cast<int>(training.size()) / 2;
    for (std::size_t i = 0; i < training.size(); ++i)
        (training[i] ? sum1 : sum0) += ghz[i];
    threshold_ = 0.5 * (sum0 / half + sum1 / half);
    calibrated_ = true;
}

TransmitResult
DfsCovert::transmit(const BitVec &bits)
{
    if (!calibrated_)
        calibrate();

    std::vector<int> tx(bits.begin(), bits.end());
    std::vector<double> ghz = runBits(tx);

    TransmitResult res;
    res.sentBits = bits;
    for (double g : ghz) {
        res.receivedBits.push_back(g > threshold_ ? 1 : 0);
        res.tpUs.push_back(g);
    }
    res.bitErrors = hammingDistance(res.sentBits, res.receivedBits);
    res.ber = bits.empty()
                  ? 0.0
                  : static_cast<double>(res.bitErrors) / bits.size();
    res.seconds = bits.size() * toSeconds(cfg_.bitTime);
    res.throughputBps =
        res.seconds > 0.0 ? bits.size() / res.seconds : 0.0;
    return res;
}

} // namespace ich
