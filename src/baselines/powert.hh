/**
 * @file
 * POWERT channel baseline (Khatamifard et al., HPCA'19; paper §6.2,
 * Fig. 12b).
 *
 * Covert channel through the package power-limit controller: the sender
 * burning extra power on its core pushes the running-average power over
 * the budget, so the controller lowers the shared frequency cap within
 * one evaluation interval (milliseconds); the receiver senses the
 * frequency. ~122 b/s, bounded by the controller's evaluation cadence.
 */

#ifndef ICH_BASELINES_POWERT_HH
#define ICH_BASELINES_POWERT_HH

#include "channels/channel.hh"

namespace ich
{

/** PowerT configuration. */
struct PowerTConfig {
    ChipConfig chip;
    std::uint64_t seed = 1;
    Time bitTime = fromMilliseconds(8.2);
    Time evalInterval = fromMilliseconds(4.0);
    double holdFraction = 0.90;
    double windowLo = 0.55;
    double windowHi = 0.95;
    std::uint64_t chunkIterations = 2000;
    /** Sender burn class: license-neutral but power-hungry. */
    InstClass senderClass = InstClass::k128Heavy;
};

/** Power-limit frequency covert channel. */
class PowerT
{
  public:
    explicit PowerT(PowerTConfig cfg);

    TransmitResult transmit(const BitVec &bits);
    double ratedThroughputBps() const;

    /** Power limit chosen between idle and burn power (for tests). */
    double chosenLimitWatts() const { return limitWatts_; }

  private:
    PowerTConfig cfg_;
    double limitWatts_ = 0.0;
    double threshold_ = 0.0;
    bool calibrated_ = false;
    std::uint64_t runCounter_ = 0;

    std::vector<double> runBits(const std::vector<int> &bits);
    void calibrate();
    void chooseLimit();
};

} // namespace ich

#endif // ICH_BASELINES_POWERT_HH
