#include "baselines/netspectre.hh"

namespace ich
{

NetSpectre::NetSpectre(ChannelConfig cfg) : cfg_(std::move(cfg))
{
    // The NetSpectre gadget uses AVX2 (256-bit heavy) instructions.
    gadgetClass_ = InstClass::k256Heavy;
}

double
NetSpectre::ratedThroughputBps() const
{
    return 1.0 / toSeconds(cfg_.period);
}

std::vector<double>
NetSpectre::runBits(const std::vector<int> &bits)
{
    ChipConfig chip = cfg_.chip;
    chip.pmu.governor.policy = GovernorPolicy::kUserspace;
    chip.pmu.governor.userspaceGhz = cfg_.freqGhz;
    Simulation sim(chip, cfg_.seed + (++runCounter_));

    double period_cycles =
        static_cast<double>(cfg_.period) * chip.tscGhz / 1000.0;
    Cycles first = static_cast<Cycles>(50.0 * chip.tscGhz * 1e3);

    Program prog;
    for (std::size_t k = 0; k < bits.size(); ++k) {
        Cycles epoch = first + static_cast<Cycles>(period_cycles * k);
        prog.waitUntilTsc(epoch);
        if (bits[k])
            prog.loop(gadgetClass_, cfg_.senderIterations);
        else
            prog.idle(fromMicroseconds(20.0));
        prog.mark(static_cast<int>(2 * k));
        prog.loop(gadgetClass_, cfg_.probeIterations);
        prog.mark(static_cast<int>(2 * k + 1));
    }

    HwThread &thr = sim.chip().core(0).thread(0);
    thr.setProgram(std::move(prog));
    thr.start();
    sim.run(fromMicroseconds(toMicroseconds(cfg_.period) *
                             (bits.size() + 2)));

    const auto &recs = thr.records();
    std::vector<double> us;
    for (std::size_t k = 0; k < bits.size(); ++k)
        us.push_back(
            toMicroseconds(recs.at(2 * k + 1).time -
                           recs.at(2 * k).time));
    return us;
}

void
NetSpectre::calibrate()
{
    std::vector<int> training;
    for (int r = 0; r < cfg_.calibrationRepeats; ++r) {
        training.push_back(0);
        training.push_back(1);
    }
    std::vector<double> us = runBits(training);
    double sum0 = 0.0, sum1 = 0.0;
    int n = cfg_.calibrationRepeats;
    for (int r = 0; r < n; ++r) {
        sum0 += us[2 * r];
        sum1 += us[2 * r + 1];
    }
    threshold_ = 0.5 * (sum0 / n + sum1 / n);
    calibrated_ = true;
}

TransmitResult
NetSpectre::transmit(const BitVec &bits)
{
    if (!calibrated_)
        calibrate();

    std::vector<int> tx_bits(bits.begin(), bits.end());
    std::vector<double> us = runBits(tx_bits);

    TransmitResult res;
    res.sentBits = bits;
    for (double u : us) {
        // Probe faster than threshold => rail was ramped => bit 1.
        res.receivedBits.push_back(u < threshold_ ? 1 : 0);
        res.tpUs.push_back(u);
    }
    res.bitErrors = hammingDistance(res.sentBits, res.receivedBits);
    res.ber = bits.empty()
                  ? 0.0
                  : static_cast<double>(res.bitErrors) / bits.size();
    res.seconds = bits.size() * toSeconds(cfg_.period);
    res.throughputBps =
        res.seconds > 0.0 ? bits.size() / res.seconds : 0.0;
    return res;
}

} // namespace ich
