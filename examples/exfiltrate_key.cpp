/**
 * @file
 * Cross-core key exfiltration under realistic noise (the attack scenario
 * the paper's introduction motivates): a sender with access to a secret
 * AES-128 key but no overt channel leaks it to a receiver on another
 * physical core via IccCoresCovert, through OS noise, using repetition
 * coding and a CRC-16 integrity check.
 */

#include <cstdio>
#include <vector>

#include "channels/cores_channel.hh"
#include "chip/presets.hh"

int
main()
{
    using namespace ich;

    std::vector<std::uint8_t> key = {0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE,
                                     0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88,
                                     0x09, 0xCF, 0x4F, 0x3C}; // AES-128

    ChannelConfig cfg;
    cfg.chip = presets::cannonLake();
    cfg.freqGhz = 1.4;
    cfg.seed = 2024;
    // A moderately noisy client system (§6.3).
    cfg.noise.interruptRatePerSec = 2000.0;
    cfg.noise.contextSwitchRatePerSec = 200.0;

    IccCoresCovert channel(cfg);

    BitVec payload = bytesToBits(key);
    std::uint16_t crc = crc16(payload);

    constexpr int kRep = 3;
    BitVec coded = repetitionEncode(payload, kRep);
    std::printf("sender: leaking a %zu-bit key as %zu coded bits "
                "(x%d repetition)\n",
                payload.size(), coded.size(), kRep);

    TransmitResult res = channel.transmit(coded);
    BitVec decoded = repetitionDecode(res.receivedBits, kRep);
    auto rx_key = bitsToBytes(decoded);

    std::printf("raw channel BER : %.4f (%zu/%zu bits)\n", res.ber,
                res.bitErrors, res.sentBits.size());
    std::printf("transfer time   : %.1f ms simulated (%.0f bit/s raw)\n",
                res.seconds * 1e3, res.throughputBps);
    std::printf("CRC-16 check    : %s\n",
                crc16(decoded) == crc ? "PASS" : "FAIL");

    std::printf("key sent        : ");
    for (auto b : key)
        std::printf("%02x", b);
    std::printf("\nkey received    : ");
    for (auto b : rx_key)
        std::printf("%02x", b);
    std::printf("\n");

    bool ok = rx_key == key;
    std::printf("exfiltration %s\n", ok ? "SUCCEEDED" : "FAILED");
    return ok ? 0 : 1;
}
