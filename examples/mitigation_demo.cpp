/**
 * @file
 * Mitigation demo (paper §7): run the same cross-core transmission on a
 * baseline chip and on chips with each mitigation applied, showing which
 * configurations still leak and at what cost.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "channels/cores_channel.hh"
#include "channels/smt_channel.hh"
#include "channels/thread_channel.hh"
#include "chip/presets.hh"
#include "mitigations/mitigations.hh"

namespace
{

using namespace ich;

/** BER of a random 40-bit payload over the given channel kind. */
double
berOn(ChannelKind kind, const ChipConfig &chip)
{
    ChannelConfig cfg;
    cfg.chip = chip;
    cfg.seed = 404;
    BitVec bits;
    unsigned x = 5;
    for (int i = 0; i < 40; ++i) {
        x = x * 1103515245 + 12345;
        bits.push_back((x >> 16) & 1);
    }
    switch (kind) {
      case ChannelKind::kThread:
        return IccThreadCovert(cfg).transmit(bits).ber;
      case ChannelKind::kSmt:
        return IccSMTcovert(cfg).transmit(bits).ber;
      case ChannelKind::kCores:
        return IccCoresCovert(cfg).transmit(bits).ber;
    }
    return 1.0;
}

std::string
leakStatus(double ber)
{
    if (ber == 0.0)
        return "LEAKS (BER 0)";
    if (ber < 0.2)
        return "leaks (BER " + std::to_string(ber).substr(0, 5) + ")";
    return "secure (BER " + std::to_string(ber).substr(0, 5) + ")";
}

} // namespace

int
main()
{
    using namespace ich;

    struct Config {
        const char *name;
        ChipConfig chip;
    };
    ChipConfig base = presets::cannonLake();
    std::vector<Config> configs = {
        {"baseline", base},
        {"per-core LDO VRs", mitigations::withPerCoreVr(base)},
        {"improved throttling", mitigations::withImprovedThrottling(base)},
        {"secure mode", mitigations::withSecureMode(base)},
    };

    std::printf("%-22s %-22s %-22s %-22s\n", "configuration",
                "IccThreadCovert", "IccSMTcovert", "IccCoresCovert");
    for (auto &c : configs) {
        std::printf("%-22s %-22s %-22s %-22s\n", c.name,
                    leakStatus(berOn(ChannelKind::kThread, c.chip)).c_str(),
                    leakStatus(berOn(ChannelKind::kSmt, c.chip)).c_str(),
                    leakStatus(berOn(ChannelKind::kCores, c.chip)).c_str());
    }

    std::printf("\nsecure-mode power overhead (worst-case guardband "
                "pinned):\n");
    std::printf("  AVX2 system   : +%.1f%%\n",
                mitigations::secureModePowerOverheadPct(base, 2.2, 3));
    std::printf("  AVX-512 system: +%.1f%%\n",
                mitigations::secureModePowerOverheadPct(base, 2.2, 4));
    std::printf("(paper: up to 4%% / 11%%)\n");
    return 0;
}
