/**
 * @file
 * Side-channel key recovery (the attack paper §6.5 sketches and leaves
 * to future work, in synthetic form): a victim routine's instruction
 * *class* depends on a secret — say, a crypto library that takes a
 * vectorized fast path only when the current key bit is set. An attacker
 * on another physical core never reads the key; it only times its own
 * 128b probe loops and recovers the key from the victim's
 * Multi-Throttling-Cores footprint.
 */

#include <cstdio>
#include <vector>

#include "channels/spy.hh"
#include "chip/presets.hh"

int
main()
{
    using namespace ich;

    // The secret the victim holds (never shared with the attacker).
    std::vector<int> key_bits = {1, 0, 1, 1, 0, 0, 1, 0,
                                 0, 1, 1, 1, 0, 1, 0, 1};

    // Victim code: bit 1 -> wide vectorized path (512b heavy),
    //              bit 0 -> scalar fallback path.
    std::vector<InstClass> victim_trace;
    victim_trace.reserve(key_bits.size());
    for (int b : key_bits)
        victim_trace.push_back(b ? InstClass::k512Heavy
                                 : InstClass::kScalar64);

    ChannelConfig cfg;
    cfg.chip = presets::cannonLake();
    cfg.freqGhz = 1.4;
    cfg.seed = 777;

    // Attacker observes from a different physical core.
    InstructionSpy spy(cfg, ChannelKind::kCores);
    SpyResult res = spy.observe(victim_trace);

    std::vector<int> recovered;
    for (int lvl : res.inferredLevels)
        recovered.push_back(lvl >= 3 ? 1 : 0); // wide path => high level

    std::printf("key bits      : ");
    for (int b : key_bits)
        std::printf("%d", b);
    std::printf("\nrecovered bits: ");
    for (int b : recovered)
        std::printf("%d", b);
    int errors = 0;
    for (std::size_t i = 0; i < key_bits.size(); ++i)
        errors += key_bits[i] != recovered[i];
    std::printf("\nbit errors    : %d / %zu\n", errors,
                key_bits.size());
    std::printf("The attacker executed no victim code and shares no "
                "memory —\nonly the voltage-regulator serialization on "
                "the shared rail.\n");
    return errors == 0 ? 0 : 1;
}
