/**
 * @file
 * SMT side-channel spy (paper §6.5): attacker code on one SMT thread
 * infers the instruction classes (width/heaviness) a victim executes on
 * the sibling thread — without the victim cooperating. Demonstrates why
 * Multi-Throttling-SMT is a side channel, not just a covert channel,
 * and shows the improved-throttling mitigation blinding the spy.
 */

#include <cstdio>
#include <vector>

#include "channels/spy.hh"
#include "chip/presets.hh"
#include "mitigations/mitigations.hh"

int
main()
{
    using namespace ich;

    ChannelConfig cfg;
    cfg.chip = presets::cannonLake();
    cfg.freqGhz = 1.4;
    cfg.seed = 321;

    // The "victim": a crypto-like phase structure alternating scalar
    // bookkeeping and wide vector arithmetic.
    std::vector<InstClass> victim = {
        InstClass::kScalar64,  InstClass::k512Heavy,
        InstClass::k512Heavy,  InstClass::kScalar64,
        InstClass::k256Heavy,  InstClass::k128Heavy,
        InstClass::kScalar64,  InstClass::k512Heavy,
        InstClass::k256Light,  InstClass::kScalar64,
    };

    InstructionSpy spy(cfg, ChannelKind::kSmt);
    SpyResult res = spy.observe(victim);

    std::printf("%-14s %-8s %-8s\n", "victim class", "actual", "spied");
    for (std::size_t i = 0; i < victim.size(); ++i) {
        std::printf("%-14s L%-7d L%-7d %s\n",
                    toString(victim[i]).c_str(), res.actualLevels[i],
                    res.inferredLevels[i],
                    res.actualLevels[i] == res.inferredLevels[i]
                        ? ""
                        : "<-- miss");
    }
    std::printf("guardband-level inference accuracy: %.0f%%\n\n",
                res.levelAccuracy * 100.0);

    // With the improved-throttling mitigation the sibling thread no
    // longer observes the victim's throttling.
    ChannelConfig safe = cfg;
    safe.chip = mitigations::withImprovedThrottling(safe.chip);
    InstructionSpy blinded(safe, ChannelKind::kSmt);
    SpyResult res2 = blinded.observe(victim);
    std::printf("with improved core throttling (mitigation): accuracy "
                "%.0f%% (chance-level)\n",
                res2.levelAccuracy * 100.0);

    return res.levelAccuracy > 0.8 ? 0 : 1;
}
