/**
 * @file
 * Minimal experiment-orchestration example: declare a two-axis sweep
 * over the thread channel, fan it out on the worker pool, and print /
 * serialize the aggregated results — then run the same sweep again in
 * resume mode to show that completed points are skipped (the `--resume`
 * flag of the bench harnesses drives exactly this machinery).
 *
 * Build & run:
 *   cmake -B build && cmake --build build -j
 *   ./build/examples/sweep_minimal
 */

#include <cstdio>

#include "channels/thread_channel.hh"
#include "chip/presets.hh"
#include "exp/exp.hh"

int
main()
{
    using namespace ich;

    // 1. Declare the scenario: axes, trials per point, base seed, and
    //    the trial function mapping (point, seed) -> metrics.
    exp::ScenarioSpec spec;
    spec.name = "minimal-ber-sweep";
    spec.description = "thread-channel BER vs. VR slew and OS noise";
    spec.axes = {
        exp::axis("slew_mV_per_us", {2.5, 50.0}),
        exp::axis("irq_per_s", {0.0, 5000.0}),
    };
    spec.trials = 2; // seeded repetitions per grid point
    spec.baseSeed = 7;
    spec.run = [](const exp::TrialContext &ctx) {
        ChannelConfig cfg;
        cfg.chip = presets::cannonLake();
        cfg.seed = ctx.seed; // derived from (baseSeed, trial index)
        cfg.chip.pmu.vr.slewVoltsPerSecond =
            ctx.point.get("slew_mV_per_us") * 1000.0;
        cfg.noise.interruptRatePerSec = ctx.point.get("irq_per_s");
        IccThreadCovert ch(cfg);

        BitVec payload;
        for (int i = 0; i < 32; ++i)
            payload.push_back(i & 1);
        TransmitResult r = ch.transmit(payload);

        exp::MetricMap m;
        m["ber"] = r.ber;
        m["throughput_bps"] = r.throughputBps;
        return m;
    };

    // 2. Run it on the pool. Trials are independent simulations, so
    //    any --jobs value produces identical aggregates. resumeDir
    //    makes the sweep resumable: every completed grid point is
    //    appended durably to a columnar result store in the results
    //    directory (this is what `--resume` enables on the harnesses).
    exp::RunnerOptions opts;
    opts.jobs = 2;
    opts.resumeDir = "results";
    exp::SweepResult result = exp::SweepRunner(opts).run(spec);

    // 3. Report: aligned text for humans, JSON/CSV for machines.
    std::printf("%s", exp::textReport(result).c_str());
    std::printf("ran %zu trials on %d workers in %.2fs\n",
                result.trials.size(), result.jobs, result.wallSeconds);

    exp::ReportPaths paths = exp::writeReports(result, "results");
    std::printf("wrote %s and %s\n", paths.json.c_str(),
                paths.csv.c_str());

    // 4. Resume: running again finds every point in the store and
    //    re-runs nothing — an interrupted sweep restarts the same way,
    //    re-running only the points the store does not yet record.
    exp::SweepResult resumed = exp::SweepRunner(opts).run(spec);
    std::printf("resumed run: %zu of %zu points restored from %s\n",
                resumed.resumedPoints, resumed.points.size(),
                exp::resultStorePath("results", spec.name).c_str());
    return 0;
}
