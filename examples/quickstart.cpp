/**
 * @file
 * Quickstart: send the byte string "IChannels!" over the same-hardware-
 * thread covert channel (IccThreadCovert) on a simulated Cannon Lake
 * part, then print what the receiver decoded plus channel statistics.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <string>

#include "channels/thread_channel.hh"
#include "chip/presets.hh"

int
main()
{
    using namespace ich;

    // 1. Pick a processor model and channel configuration.
    ChannelConfig cfg;
    cfg.chip = presets::cannonLake();
    cfg.freqGhz = 1.4; // pin the clock, as the paper's PoC does
    cfg.seed = 42;

    // 2. Construct the covert channel (calibration happens lazily).
    IccThreadCovert channel(cfg);

    // 3. Encode a secret as bits and transmit.
    std::string secret = "IChannels!";
    std::vector<std::uint8_t> bytes(secret.begin(), secret.end());
    BitVec bits = bytesToBits(bytes);
    TransmitResult res = channel.transmit(bits);

    // 4. Decode on the receiver side.
    std::vector<std::uint8_t> rx_bytes = bitsToBytes(res.receivedBits);
    std::string decoded(rx_bytes.begin(), rx_bytes.end());

    std::printf("secret sent      : %s\n", secret.c_str());
    std::printf("secret received  : %s\n", decoded.c_str());
    std::printf("bits transferred : %zu\n", res.sentBits.size());
    std::printf("bit errors       : %zu (BER %.4f)\n", res.bitErrors,
                res.ber);
    std::printf("throughput       : %.0f bit/s\n", res.throughputBps);
    std::printf("TP level means   : ");
    for (int s = 0; s < kNumSymbols; ++s)
        std::printf("L%d=%.2fus ", 4 - s,
                    channel.calibration().meanUs(s));
    std::printf("\nmin level separation: %.2f us\n",
                channel.calibration().minSeparationUs());
    return res.bitErrors == 0 ? 0 : 1;
}
